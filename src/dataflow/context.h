#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "sim/charge_ledger.h"
#include "sim/cluster_sim.h"
#include "sim/cost_profile.h"
#include "sim/faults.h"

/// \file context.h
/// Execution context of the Spark-like dataflow engine (paper Section 4.1).
///
/// A Context pairs a simulated cluster with a language profile (the paper
/// benchmarks both PySpark and Spark-Java) and a scale factor: each actual
/// record processed stands for `scale` logical records on the 2013 fleet.

namespace mlbench::dataflow {

struct ContextOptions {
  /// Language of the driver + closures (Python via Py4J, or JVM).
  sim::Language language = sim::Language::kPython;
  /// Framework cost constants.
  sim::DataflowCosts costs;
  /// Logical records represented by one actual data record.
  double scale = 1.0;
  /// Base seed for per-partition random streams.
  std::uint64_t seed = 1;
  /// Spark MEMORY_ONLY semantics for cache admissions: under memory
  /// pressure, evict other cached partitions on the machine (lineage
  /// recomputes them on next use) or skip caching the new partition,
  /// instead of failing the job with OutOfMemory. Off by default — the
  /// paper's runs died on cache pressure, and the default must stay
  /// bit-identical to that behavior.
  bool evict_cache_on_pressure = false;
};

/// Owner of one cached RDD's partitions, registered with the Context so
/// crash recovery and memory-pressure eviction can reach every cache.
/// All calls happen from serial code (job boundaries / ledger commits).
class CacheHolder {
 public:
  virtual ~CacheHolder() = default;
  /// Frees every cached partition resident on `machine` (simulated bytes
  /// included); lineage recomputes them on next access. Returns the
  /// simulated bytes freed.
  virtual double EvictMachine(int machine) = 0;
  /// Drops partition `partition`'s pending cache entry without freeing
  /// simulated memory — its admission was refused, nothing was charged.
  virtual void DropPending(int partition) = 0;
};

/// Per-record cost annotation for user closures. The engine charges
/// framework record-handling automatically; closures doing real numerical
/// work declare it here so the simulated time reflects paper-scale FLOPs.
struct OpCost {
  /// Dense-linalg FLOPs performed per record.
  double flops_per_record = 0;
  /// Number of linalg kernel invocations per record (NumPy-call overhead).
  double linalg_calls_per_record = 0;
  /// Dimensionality of the linalg operands (drives the Java cache penalty).
  std::size_t dim = 1;
  /// Scalars crossing the runtime boundary per record (Python object
  /// conversion / Java boxing).
  double elements_per_record = 0;
};

class Context {
 public:
  Context(sim::ClusterSim* sim, ContextOptions opts)
      : sim_(sim),
        opts_(std::move(opts)),
        lang_(sim::GetLanguageModel(opts_.language)) {}

  sim::ClusterSim& sim() { return *sim_; }
  const ContextOptions& options() const { return opts_; }
  const sim::LanguageModel& lang() const { return lang_; }
  int machines() const { return sim_->machines(); }

  /// Machine hosting partition `p` (block placement).
  int MachineOf(int partition, int num_partitions) const {
    int per = (num_partitions + machines() - 1) / machines();
    return std::min(partition / per, machines() - 1);
  }

  /// Charges the CPU cost of pushing `actual_records` (each standing for
  /// `scale` logical records) through a user closure on `machine`, spread
  /// over the machine's cores.
  void ChargeClosureScaled(int machine, double actual_records, double scale,
                           const OpCost& cost) {
    double logical = actual_records * scale;
    double s = logical * lang_.per_record_s +
               lang_.LinalgSeconds(logical * cost.flops_per_record,
                                   logical * cost.linalg_calls_per_record,
                                   cost.dim,
                                   logical * cost.elements_per_record);
    sim_->ChargeParallelCpuOnMachine(machine, s);
  }

  /// Charges serialization of `bytes` logical bytes on `machine` (closure
  /// and shuffle boundaries in Python pay pickle + Py4J per byte).
  void ChargeSerializeBytes(int machine, double bytes) {
    sim_->ChargeParallelCpuOnMachine(machine,
                                     bytes * lang_.per_serialized_byte_s);
  }

  /// Logical bytes represented by `actual_records` of `record_bytes` each,
  /// at an RDD-specific scale.
  double LogicalBytes(double actual_records, double record_bytes) const {
    return actual_records * record_bytes;
  }

  /// Allocates job-scoped memory (shuffle buffers, driver collect buffers);
  /// released automatically by EndJob. Inside a parallel partition task
  /// (charge ledger bound), the allocation is recorded on the ledger and
  /// registered as a transient when the task's charges commit — OOM, if
  /// any, then surfaces from CommitTaskCharges at the serial partition
  /// order's exact failure point.
  Status AllocateTransient(int machine, double bytes, std::string_view what) {
    if (auto* ledger = sim::ChargeLedger::Bound()) {
      ledger->LogTransientAlloc(machine, bytes, what);
      return Status::OK();
    }
    MLBENCH_RETURN_NOT_OK(sim_->Allocate(machine, bytes, what));
    transients_.emplace_back(machine, bytes);
    return Status::OK();
  }

  /// Commits one parallel task's recorded charges (see ParallelPartitions
  /// in rdd.h), registering its successful transient allocations for
  /// EndJob release. Soft cache admissions that fail during the replay
  /// degrade through HandleCachePressure instead of failing the commit.
  Status CommitTaskCharges(sim::ChargeLedger& ledger) {
    return sim_->CommitLedger(
        ledger,
        [this](int machine, double bytes) {
          transients_.emplace_back(machine, bytes);
        },
        [this](std::int64_t tag, int machine, double bytes) {
          HandleCachePressure(tag, machine, bytes);
        });
  }

  // ---- Cache registry ------------------------------------------------------

  /// Registers a cached RDD; the returned id tags its admissions and maps
  /// soft failures back to the owner. Ids are assigned in registration
  /// order, so eviction order is deterministic.
  std::int64_t RegisterCache(CacheHolder* holder) {
    std::int64_t id = next_cache_id_++;
    caches_[id] = holder;
    return id;
  }
  void UnregisterCache(std::int64_t id) { caches_.erase(id); }

  /// Admits one cached partition's bytes. With evict_cache_on_pressure
  /// off this is exactly the pre-fault-model Allocate (hard OutOfMemory).
  /// With it on, admission is best-effort: under a bound ledger the op is
  /// logged soft and resolved at commit; serially a refusal evicts other
  /// caches on the machine and retries, then drops the pending entry.
  Status CacheAllocate(int machine, double bytes, std::int64_t cache_id,
                       int partition) {
    constexpr std::string_view kWhat = "cached RDD partition";
    if (!opts_.evict_cache_on_pressure) {
      return sim_->Allocate(machine, bytes, kWhat);
    }
    std::int64_t tag = EncodeCacheTag(cache_id, partition);
    if (sim::ChargeLedger::Bound() != nullptr) {
      return sim_->AllocateSoft(machine, bytes, kWhat, tag);
    }
    Status st = sim_->Allocate(machine, bytes, kWhat);
    if (st.IsOutOfMemory()) {
      HandleCachePressure(tag, machine, bytes);
      return Status::OK();  // best-effort: the job continues either way
    }
    return st;
  }

  /// Starts a job phase (scheduler launch + one task wave per machine).
  /// The first job of an application also pins per-peer shuffle-fetch
  /// buffers for the context's lifetime; a failed pin is retried on later
  /// jobs — eviction may have freed the RAM it needs in the meantime, and
  /// a recoverable OOM must not permanently doom the application.
  void BeginJob(const std::string& name, int num_partitions) {
    sim_->BeginPhase("dataflow:" + name);
    sim_->ChargeFixed(opts_.costs.job_launch_s +
                      opts_.costs.per_task_s *
                          (static_cast<double>(num_partitions) /
                           std::max(1, sim_->machines())));
    if (!peers_allocated_) {
      peer_bytes_ = opts_.costs.peer_buffer_bytes * (machines() - 1);
      peer_status_ = sim_->AllocateEverywhere(peer_bytes_, "shuffle peer buffers");
      peers_allocated_ = peer_status_.ok();
    }
    ApplyJobFaults();
  }

  /// Status of the lifetime allocations (peer buffers, closure residuals);
  /// a failed allocation here fails the whole application.
  const Status& lifetime_status() const { return peer_status_; }

  /// Latched permanent simulated failure (an executor crashed more times
  /// than the retry budget allows); drivers abort the run with this.
  const Status& fault_status() const { return fault_status_; }

  /// Models shipping a task closure of `bytes` (e.g. the collected model)
  /// to every task of a job: one transient copy per running task per
  /// machine, plus a resident fraction that is never released before the
  /// application ends (Spark 0.7/0.8 closure caching).
  Status BroadcastClosure(double bytes) {
    double per_machine_live =
        bytes * spec_cores();  // one copy per concurrently running task
    MLBENCH_RETURN_NOT_OK(
        AllocateTransient_AllMachines(per_machine_live, "task closures"));
    double residual =
        bytes * spec_cores() * opts_.costs.closure_residual_fraction;
    MLBENCH_RETURN_NOT_OK(
        sim_->AllocateEverywhere(residual, "closure residuals"));
    residual_bytes_ += residual;
    // Shipping cost: serialize once per task, cross the network.
    ChargeSerializeBytes(0, bytes * spec_cores() * machines());
    sim_->ChargeNetwork(0, bytes * spec_cores() * (machines() - 1));
    return Status::OK();
  }

  /// Releases application-lifetime state (context shutdown).
  void ReleaseLifetimeState() {
    if (peers_allocated_ && peer_status_.ok()) {
      sim_->FreeEverywhere(peer_bytes_);
      peers_allocated_ = false;
    }
    sim_->FreeEverywhere(residual_bytes_);
    residual_bytes_ = 0;
  }

  /// Ends the job phase, freeing transient buffers; returns wall time.
  double EndJob() {
    double t = sim_->EndPhase();
    for (auto& [machine, bytes] : transients_) sim_->Free(machine, bytes);
    transients_.clear();
    return t;
  }

 private:
  int spec_cores() const { return sim_->spec().machine.cores; }

  Status AllocateTransient_AllMachines(double bytes, std::string_view what) {
    for (int m = 0; m < machines(); ++m) {
      MLBENCH_RETURN_NOT_OK(AllocateTransient(m, bytes, what));
    }
    return Status::OK();
  }

  static std::int64_t EncodeCacheTag(std::int64_t cache_id, int partition) {
    MLBENCH_CHECK(partition >= 0 && partition < (1 << 24));
    return (cache_id << 24) | partition;
  }

  /// Resolves one refused cache admission (Spark block-manager eviction):
  /// evict *other* caches' partitions on the machine, retry once, and if
  /// the block still does not fit, drop the pending entry — lineage
  /// recomputes it on the next access. Serial (commit / partition-0 path),
  /// so the eviction order (cache registration order) is deterministic.
  void HandleCachePressure(std::int64_t tag, int machine, double bytes) {
    const std::int64_t cache_id = tag >> 24;
    const int partition = static_cast<int>(tag & ((1 << 24) - 1));
    double freed = 0;
    for (auto& [id, holder] : caches_) {
      if (id != cache_id) freed += holder->EvictMachine(machine);
    }
    if (freed > 0 &&
        sim_->Allocate(machine, bytes, "cached RDD partition").ok()) {
      return;  // admitted after eviction
    }
    auto it = caches_.find(cache_id);
    if (it != caches_.end()) it->second->DropPending(partition);
  }

  /// Spark-faithful recovery for job `job_index_` (then advances it).
  /// Crash: the executor's tasks re-run and its cached partitions are
  /// lost; lineage recomputes them lazily (charged on next access).
  /// Straggler: Spark 0.7 shipped with speculation off — the wave waits.
  /// Send failure: shuffle fetches re-request, with backoff.
  void ApplyJobFaults() {
    const std::int64_t job = job_index_++;
    sim::FaultInjector* inj = sim_->faults();
    if (inj == nullptr || !inj->active() || !fault_status_.ok()) return;
    const sim::FaultPlan& plan = inj->plan();
    const sim::RetryPolicy& retry = inj->retry();
    for (int m = 0; m < machines(); ++m) {
      if (int crashes = plan.CrashCountAt(job, m); crashes > 0) {
        if (retry.Exhausted(crashes)) {
          fault_status_ = Status::Unavailable(
              "executor on machine " + std::to_string(m) + " failed " +
              std::to_string(crashes) + " attempts of job " +
              std::to_string(job));
          return;
        }
        double lost = 0;
        for (auto& [id, holder] : caches_) lost += holder->EvictMachine(m);
        (void)lost;
        sim_->ScalePhaseCpu(m, 1.0 + static_cast<double>(crashes));
        double backoff = retry.BackoffSeconds(crashes);
        sim_->ChargeFixed(backoff);
        inj->RecordRecovery(
            {sim::FaultKind::kCrash, "dataflow:job", job, m, backoff});
      }
      if (double f = plan.StragglerFactorAt(job, m); f > 1.0) {
        sim_->ScalePhaseCpu(m, f);
        inj->RecordRecovery(
            {sim::FaultKind::kStraggler, "dataflow:job", job, m, 0.0});
      }
      if (int sends = plan.SendFailureCountAt(job, m); sends > 0) {
        if (retry.Exhausted(sends)) {
          fault_status_ = Status::Unavailable(
              "shuffle fetches from machine " + std::to_string(m) +
              " failed " + std::to_string(sends) + " attempts in job " +
              std::to_string(job));
          return;
        }
        sim_->ScalePhaseNet(m, 1.0 + static_cast<double>(sends));
        double backoff = retry.BackoffSeconds(sends);
        sim_->ChargeFixed(backoff);
        inj->RecordRecovery(
            {sim::FaultKind::kSendFailure, "dataflow:job", job, m, backoff});
      }
    }
  }

  sim::ClusterSim* sim_;
  ContextOptions opts_;
  sim::LanguageModel lang_;
  std::vector<std::pair<int, double>> transients_;
  bool peers_allocated_ = false;
  double peer_bytes_ = 0;
  double residual_bytes_ = 0;
  Status peer_status_;
  std::map<std::int64_t, CacheHolder*> caches_;
  std::int64_t next_cache_id_ = 0;
  std::int64_t job_index_ = 0;
  Status fault_status_ = Status::OK();
};

}  // namespace mlbench::dataflow
