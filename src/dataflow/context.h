#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "sim/charge_ledger.h"
#include "sim/cluster_sim.h"
#include "sim/cost_profile.h"

/// \file context.h
/// Execution context of the Spark-like dataflow engine (paper Section 4.1).
///
/// A Context pairs a simulated cluster with a language profile (the paper
/// benchmarks both PySpark and Spark-Java) and a scale factor: each actual
/// record processed stands for `scale` logical records on the 2013 fleet.

namespace mlbench::dataflow {

struct ContextOptions {
  /// Language of the driver + closures (Python via Py4J, or JVM).
  sim::Language language = sim::Language::kPython;
  /// Framework cost constants.
  sim::DataflowCosts costs;
  /// Logical records represented by one actual data record.
  double scale = 1.0;
  /// Base seed for per-partition random streams.
  std::uint64_t seed = 1;
};

/// Per-record cost annotation for user closures. The engine charges
/// framework record-handling automatically; closures doing real numerical
/// work declare it here so the simulated time reflects paper-scale FLOPs.
struct OpCost {
  /// Dense-linalg FLOPs performed per record.
  double flops_per_record = 0;
  /// Number of linalg kernel invocations per record (NumPy-call overhead).
  double linalg_calls_per_record = 0;
  /// Dimensionality of the linalg operands (drives the Java cache penalty).
  std::size_t dim = 1;
  /// Scalars crossing the runtime boundary per record (Python object
  /// conversion / Java boxing).
  double elements_per_record = 0;
};

class Context {
 public:
  Context(sim::ClusterSim* sim, ContextOptions opts)
      : sim_(sim),
        opts_(std::move(opts)),
        lang_(sim::GetLanguageModel(opts_.language)) {}

  sim::ClusterSim& sim() { return *sim_; }
  const ContextOptions& options() const { return opts_; }
  const sim::LanguageModel& lang() const { return lang_; }
  int machines() const { return sim_->machines(); }

  /// Machine hosting partition `p` (block placement).
  int MachineOf(int partition, int num_partitions) const {
    int per = (num_partitions + machines() - 1) / machines();
    return std::min(partition / per, machines() - 1);
  }

  /// Charges the CPU cost of pushing `actual_records` (each standing for
  /// `scale` logical records) through a user closure on `machine`, spread
  /// over the machine's cores.
  void ChargeClosureScaled(int machine, double actual_records, double scale,
                           const OpCost& cost) {
    double logical = actual_records * scale;
    double s = logical * lang_.per_record_s +
               lang_.LinalgSeconds(logical * cost.flops_per_record,
                                   logical * cost.linalg_calls_per_record,
                                   cost.dim,
                                   logical * cost.elements_per_record);
    sim_->ChargeParallelCpuOnMachine(machine, s);
  }

  /// Charges serialization of `bytes` logical bytes on `machine` (closure
  /// and shuffle boundaries in Python pay pickle + Py4J per byte).
  void ChargeSerializeBytes(int machine, double bytes) {
    sim_->ChargeParallelCpuOnMachine(machine,
                                     bytes * lang_.per_serialized_byte_s);
  }

  /// Logical bytes represented by `actual_records` of `record_bytes` each,
  /// at an RDD-specific scale.
  double LogicalBytes(double actual_records, double record_bytes) const {
    return actual_records * record_bytes;
  }

  /// Allocates job-scoped memory (shuffle buffers, driver collect buffers);
  /// released automatically by EndJob. Inside a parallel partition task
  /// (charge ledger bound), the allocation is recorded on the ledger and
  /// registered as a transient when the task's charges commit — OOM, if
  /// any, then surfaces from CommitTaskCharges at the serial partition
  /// order's exact failure point.
  Status AllocateTransient(int machine, double bytes, std::string_view what) {
    if (auto* ledger = sim::ChargeLedger::Bound()) {
      ledger->LogTransientAlloc(machine, bytes, what);
      return Status::OK();
    }
    MLBENCH_RETURN_NOT_OK(sim_->Allocate(machine, bytes, what));
    transients_.emplace_back(machine, bytes);
    return Status::OK();
  }

  /// Commits one parallel task's recorded charges (see ParallelPartitions
  /// in rdd.h), registering its successful transient allocations for
  /// EndJob release.
  Status CommitTaskCharges(sim::ChargeLedger& ledger) {
    return sim_->CommitLedger(ledger, [this](int machine, double bytes) {
      transients_.emplace_back(machine, bytes);
    });
  }

  /// Starts a job phase (scheduler launch + one task wave per machine).
  /// The first job of an application also pins per-peer shuffle-fetch
  /// buffers for the context's lifetime.
  void BeginJob(const std::string& name, int num_partitions) {
    sim_->BeginPhase("dataflow:" + name);
    sim_->ChargeFixed(opts_.costs.job_launch_s +
                      opts_.costs.per_task_s *
                          (static_cast<double>(num_partitions) /
                           std::max(1, sim_->machines())));
    if (!peers_allocated_) {
      peers_allocated_ = true;
      peer_bytes_ = opts_.costs.peer_buffer_bytes * (machines() - 1);
      peer_status_ = sim_->AllocateEverywhere(peer_bytes_, "shuffle peer buffers");
    }
  }

  /// Status of the lifetime allocations (peer buffers, closure residuals);
  /// a failed allocation here fails the whole application.
  const Status& lifetime_status() const { return peer_status_; }

  /// Models shipping a task closure of `bytes` (e.g. the collected model)
  /// to every task of a job: one transient copy per running task per
  /// machine, plus a resident fraction that is never released before the
  /// application ends (Spark 0.7/0.8 closure caching).
  Status BroadcastClosure(double bytes) {
    double per_machine_live =
        bytes * spec_cores();  // one copy per concurrently running task
    MLBENCH_RETURN_NOT_OK(
        AllocateTransient_AllMachines(per_machine_live, "task closures"));
    double residual =
        bytes * spec_cores() * opts_.costs.closure_residual_fraction;
    MLBENCH_RETURN_NOT_OK(
        sim_->AllocateEverywhere(residual, "closure residuals"));
    residual_bytes_ += residual;
    // Shipping cost: serialize once per task, cross the network.
    ChargeSerializeBytes(0, bytes * spec_cores() * machines());
    sim_->ChargeNetwork(0, bytes * spec_cores() * (machines() - 1));
    return Status::OK();
  }

  /// Releases application-lifetime state (context shutdown).
  void ReleaseLifetimeState() {
    if (peers_allocated_ && peer_status_.ok()) {
      sim_->FreeEverywhere(peer_bytes_);
      peers_allocated_ = false;
    }
    sim_->FreeEverywhere(residual_bytes_);
    residual_bytes_ = 0;
  }

  /// Ends the job phase, freeing transient buffers; returns wall time.
  double EndJob() {
    double t = sim_->EndPhase();
    for (auto& [machine, bytes] : transients_) sim_->Free(machine, bytes);
    transients_.clear();
    return t;
  }

 private:
  int spec_cores() const { return sim_->spec().machine.cores; }

  Status AllocateTransient_AllMachines(double bytes, std::string_view what) {
    for (int m = 0; m < machines(); ++m) {
      MLBENCH_RETURN_NOT_OK(AllocateTransient(m, bytes, what));
    }
    return Status::OK();
  }

  sim::ClusterSim* sim_;
  ContextOptions opts_;
  sim::LanguageModel lang_;
  std::vector<std::pair<int, double>> transients_;
  bool peers_allocated_ = false;
  double peer_bytes_ = 0;
  double residual_bytes_ = 0;
  Status peer_status_;
};

}  // namespace mlbench::dataflow
