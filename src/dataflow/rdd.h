#pragma once

#include <functional>
#include <memory>
// mlint: allow(raw-thread) — cache-fill guard only; see RddNode::cache_mu
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dataflow/context.h"
#include "exec/parallel_for.h"
#include "sim/charge_ledger.h"

/// \file rdd.h
/// A lazy, lineage-tracked Resilient Distributed Dataset (paper Section 4.1).
///
/// Semantics follow Spark: transformations (Map, FlatMap, Filter,
/// ReduceByKey, ...) build a lineage graph; actions (Collect, Reduce, Count,
/// CollectAsMap) run a *job* that evaluates the graph. Narrow chains stream
/// with O(1) simulated memory; shuffles and caches materialize and are
/// charged against the simulated cluster's per-machine RAM at logical scale.
///
/// Each RDD carries a `scale` (logical records per actual record) and a
/// `record_bytes` estimate; together they convert the laptop-scale execution
/// into 2013-fleet costs.

namespace mlbench::dataflow {

namespace detail {

/// Hash-combine for pair keys used in shuffles.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t h1 = std::hash<A>{}(p.first);
    std::size_t h2 = std::hash<B>{}(p.second);
    return h1 ^ (h2 + 0x9E3779B97F4A7C15ULL + (h1 << 6) + (h1 >> 2));
  }
};

template <typename K>
struct IsPair : std::false_type {};
template <typename A, typename B>
struct IsPair<std::pair<A, B>> : std::true_type {};

template <typename K>
using HashOf = std::conditional_t<IsPair<K>::value, PairHash, std::hash<K>>;

template <typename T>
struct RddNode : CacheHolder {
  Context* ctx = nullptr;
  int num_partitions = 0;
  double record_bytes = 8;
  double scale = 1.0;

  /// Computes one partition, charging simulated costs as it goes.
  std::function<Result<std::vector<T>>(int)> compute;

  bool cached = false;
  /// Context cache-registry id while `cached` (see Rdd::Cache); -1 when
  /// this node has never been cached.
  std::int64_t cache_id = -1;
  /// Cache state. Partition tasks may materialize concurrently, so the
  /// fill flags are guarded by a mutex; `cache_store` is presized before
  /// any fill (never reallocated mid-job) and each slot is written by
  /// exactly one task, then immutable. The lock orders nothing
  /// result-affecting: slot p's content is a pure function of p, and all
  /// sim charges go through the task ChargeLedger, so fill timing never
  /// reaches results, charges or RNG streams.
  // mlint: allow(raw-thread) — write-once slot guard; results are per-slot
  // pure functions, charges ledgered, so lock timing is unobservable
  std::mutex cache_mu;
  std::vector<char> cache_filled;
  std::vector<std::vector<T>> cache_store;

  bool CacheHit(int p) {
    if (!cached) return false;
    // mlint: allow(raw-thread) — guards the write-once fill flags only
    std::lock_guard<std::mutex> lock(cache_mu);
    return !cache_filled.empty() && cache_filled[p] != 0;
  }

  Result<std::vector<T>> Materialize(int p) {
    if (CacheHit(p)) {
      // Reading a cached partition costs memory bandwidth only.
      double bytes =
          static_cast<double>(cache_store[p].size()) * scale * record_bytes;
      ctx->sim().ChargeParallelCpuOnMachine(
          ctx->MachineOf(p, num_partitions),
          bytes * ctx->options().costs.cached_read_byte_s);
      return cache_store[p];
    }
    Result<std::vector<T>> r = compute(p);
    if (!r.ok()) return r;
    if (cached) {
      {
        // mlint: allow(raw-thread) — guards the write-once fill flags only
        std::lock_guard<std::mutex> lock(cache_mu);
        if (cache_store.empty()) {
          cache_store.resize(static_cast<std::size_t>(num_partitions));
          cache_filled.assign(static_cast<std::size_t>(num_partitions), 0);
        }
        cache_store[p] = *r;
        cache_filled[p] = 1;
      }
      // Persist: charge this partition's logical bytes on its machine.
      // Admission goes through the context so memory pressure can evict
      // or skip (evict_cache_on_pressure) instead of failing the job.
      double bytes = static_cast<double>(r->size()) * scale * record_bytes;
      MLBENCH_RETURN_NOT_OK(ctx->CacheAllocate(
          ctx->MachineOf(p, num_partitions), bytes, cache_id, p));
    }
    return r;
  }

  // CacheHolder: both methods run from serial code only (job boundaries,
  // ledger commits); the lock still guards against a concurrent fill.

  double EvictMachine(int machine) override {
    // mlint: allow(raw-thread) — guards the write-once fill flags only
    std::lock_guard<std::mutex> lock(cache_mu);
    double freed = 0;
    for (int p = 0; p < static_cast<int>(cache_filled.size()); ++p) {
      if (cache_filled[p] == 0) continue;
      if (ctx->MachineOf(p, num_partitions) != machine) continue;
      double bytes =
          static_cast<double>(cache_store[p].size()) * scale * record_bytes;
      ctx->sim().Free(machine, bytes);
      cache_store[p].clear();
      cache_store[p].shrink_to_fit();
      cache_filled[p] = 0;
      freed += bytes;
    }
    return freed;
  }

  void DropPending(int partition) override {
    // mlint: allow(raw-thread) — guards the write-once fill flags only
    std::lock_guard<std::mutex> lock(cache_mu);
    auto p = static_cast<std::size_t>(partition);
    if (p >= cache_filled.size() || cache_filled[p] == 0) return;
    cache_store[p].clear();
    cache_store[p].shrink_to_fit();
    cache_filled[p] = 0;
  }

  ~RddNode() override {
    if (cache_id >= 0 && ctx != nullptr) ctx->UnregisterCache(cache_id);
  }
};

/// Evaluates `fn(p)` (Status-returning) for every partition of a job stage.
///
/// Partition 0 runs first, alone, on the calling thread: evaluating one
/// partition forces every shuffle and side-state block in the lineage to
/// complete deterministically before other partitions can observe it. The
/// remaining partitions then fan out across the host pool, each recording
/// its sim charges on a private ChargeLedger; ledgers commit in partition
/// order afterwards, so the simulator sees the exact charge sequence (and
/// the exact OOM point, if any) of the serial loop.
template <typename Fn>
Status ParallelPartitions(Context* ctx, int parts, Fn&& fn) {
  if (parts <= 0) return Status::OK();
  MLBENCH_RETURN_NOT_OK(fn(0));
  if (parts == 1) return Status::OK();
  const std::int64_t rest = parts - 1;
  // Ledger and status arrays are leased scratch: ledgers keep their op
  // buffers (and interned label pools) across stages, so a steady-state
  // stage records charges without allocating.
  exec::ScratchVec<sim::ChargeLedger> ledger_lease;
  exec::ScratchVec<Status> status_lease;
  std::vector<sim::ChargeLedger>& ledgers = ledger_lease.get();
  std::vector<Status>& statuses = status_lease.get();
  ledgers.resize(static_cast<std::size_t>(rest));
  statuses.resize(static_cast<std::size_t>(rest));
  for (auto& ledger : ledgers) ledger.Clear();
  // Partition tasks are whole stage bodies — the heavyweight cost class;
  // GrainFor keeps the historical one-partition-per-chunk fan-out for any
  // realistic partition count. Grain-invariant either way: ledgers and
  // statuses commit in partition order below.
  exec::ParallelFor(rest, exec::GrainFor(rest, exec::CostHint::kHeavy),
                    [&](const exec::Chunk& chunk) {
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      std::size_t s = static_cast<std::size_t>(i);
      sim::ScopedLedger bind(&ledgers[s]);
      statuses[s] = fn(static_cast<int>(i) + 1);
    }
  });
  for (std::int64_t i = 0; i < rest; ++i) {
    std::size_t s = static_cast<std::size_t>(i);
    // Commit before inspecting the task status: a failed task's charges up
    // to its failure point were applied in the serial run too.
    MLBENCH_RETURN_NOT_OK(ctx->CommitTaskCharges(ledgers[s]));
    MLBENCH_RETURN_NOT_OK(statuses[s]);
  }
  return Status::OK();
}

}  // namespace detail

template <typename T>
class Rdd {
 public:
  Rdd() = default;
  Rdd(Context* ctx, std::shared_ptr<detail::RddNode<T>> node)
      : ctx_(ctx), node_(std::move(node)) {}

  int num_partitions() const { return node_->num_partitions; }
  double record_bytes() const { return node_->record_bytes; }
  double scale() const { return node_->scale; }
  Context* context() const { return ctx_; }
  const std::shared_ptr<detail::RddNode<T>>& node() const { return node_; }

  /// Marks this RDD for in-memory persistence; populated by the first
  /// action that evaluates it (Spark's cache()). Registration with the
  /// context lets crash recovery and memory-pressure eviction find the
  /// cached partitions.
  Rdd<T>& Cache() {
    if (!node_->cached && node_->cache_id < 0) {
      node_->cache_id = ctx_->RegisterCache(node_.get());
    }
    node_->cached = true;
    return *this;
  }

  /// Releases the cached partitions and their simulated memory.
  void Unpersist() {
    if (node_->cached && !node_->cache_filled.empty()) {
      for (int p = 0; p < node_->num_partitions; ++p) {
        if (!node_->cache_filled[p]) continue;
        double bytes = static_cast<double>(node_->cache_store[p].size()) *
                       node_->scale * node_->record_bytes;
        ctx_->sim().Free(ctx_->MachineOf(p, node_->num_partitions), bytes);
      }
      node_->cache_store.clear();
    }
    node_->cached = false;
    node_->cache_filled.clear();
    if (node_->cache_id >= 0) {
      ctx_->UnregisterCache(node_->cache_id);
      node_->cache_id = -1;
    }
  }

  /// Element-wise transformation. `out_bytes` < 0 inherits this RDD's
  /// record size estimate.
  template <typename F>
  auto Map(F f, OpCost cost = {}, double out_bytes = -1) const
      -> Rdd<std::invoke_result_t<F, const T&>> {
    using U = std::invoke_result_t<F, const T&>;
    auto parent = node_;
    auto* ctx = ctx_;
    auto node = std::make_shared<detail::RddNode<U>>();
    node->ctx = ctx;
    node->num_partitions = parent->num_partitions;
    node->record_bytes = out_bytes < 0 ? parent->record_bytes : out_bytes;
    node->scale = parent->scale;
    node->compute = [parent, ctx, f = std::move(f),
                     cost](int p) -> Result<std::vector<U>> {
      auto in = parent->Materialize(p);
      if (!in.ok()) return in.status();
      ctx->ChargeClosureScaled(ctx->MachineOf(p, parent->num_partitions),
                               static_cast<double>(in->size()), parent->scale,
                               cost);
      std::vector<U> out;
      out.reserve(in->size());
      for (const auto& x : *in) out.push_back(f(x));
      return out;
    };
    return Rdd<U>(ctx, node);
  }

  /// One-to-many transformation; `f` returns a container of output records.
  template <typename F>
  auto FlatMap(F f, OpCost cost = {}, double out_bytes = -1) const
      -> Rdd<typename std::invoke_result_t<F, const T&>::value_type> {
    using U = typename std::invoke_result_t<F, const T&>::value_type;
    auto parent = node_;
    auto* ctx = ctx_;
    auto node = std::make_shared<detail::RddNode<U>>();
    node->ctx = ctx;
    node->num_partitions = parent->num_partitions;
    node->record_bytes = out_bytes < 0 ? parent->record_bytes : out_bytes;
    node->scale = parent->scale;
    node->compute = [parent, ctx, f = std::move(f),
                     cost](int p) -> Result<std::vector<U>> {
      auto in = parent->Materialize(p);
      if (!in.ok()) return in.status();
      ctx->ChargeClosureScaled(ctx->MachineOf(p, parent->num_partitions),
                               static_cast<double>(in->size()), parent->scale,
                               cost);
      std::vector<U> out;
      for (const auto& x : *in) {
        auto ys = f(x);
        for (auto& y : ys) out.push_back(std::move(y));
      }
      return out;
    };
    return Rdd<U>(ctx, node);
  }

  /// Keeps records satisfying the predicate.
  template <typename F>
  Rdd<T> Filter(F pred, OpCost cost = {}) const {
    auto parent = node_;
    auto* ctx = ctx_;
    auto node = std::make_shared<detail::RddNode<T>>();
    node->ctx = ctx;
    node->num_partitions = parent->num_partitions;
    node->record_bytes = parent->record_bytes;
    node->scale = parent->scale;
    node->compute = [parent, ctx, pred = std::move(pred),
                     cost](int p) -> Result<std::vector<T>> {
      auto in = parent->Materialize(p);
      if (!in.ok()) return in.status();
      ctx->ChargeClosureScaled(ctx->MachineOf(p, parent->num_partitions),
                               static_cast<double>(in->size()), parent->scale,
                               cost);
      std::vector<T> out;
      for (const auto& x : *in) {
        if (pred(x)) out.push_back(x);
      }
      return out;
    };
    return Rdd<T>(ctx, node);
  }

  // ---- Actions (each runs one simulated job) -------------------------------

  /// Returns all records at the driver. Driver memory is charged
  /// transiently on machine 0.
  Result<std::vector<T>> Collect() const {
    ctx_->BeginJob("collect", node_->num_partitions);
    auto out = CollectNoJob();
    ctx_->EndJob();
    return out;
  }

  /// Actual (laptop-scale) record count; also charges the scan.
  Result<long long> CountActual() const {
    const int parts = node_->num_partitions;
    ctx_->BeginJob("count", parts);
    std::vector<long long> counts(static_cast<std::size_t>(parts), 0);
    Status st = detail::ParallelPartitions(ctx_, parts, [&](int p) -> Status {
      auto r = node_->Materialize(p);
      if (!r.ok()) return r.status();
      ctx_->ChargeClosureScaled(ctx_->MachineOf(p, parts),
                                static_cast<double>(r->size()), node_->scale,
                                OpCost{});
      counts[static_cast<std::size_t>(p)] = static_cast<long long>(r->size());
      return Status::OK();
    });
    ctx_->EndJob();
    if (!st.ok()) return st;
    long long n = 0;
    for (long long c : counts) n += c;
    return n;
  }

  /// Paper-scale (logical) record count.
  Result<double> CountLogical() const {
    auto n = CountActual();
    if (!n.ok()) return n.status();
    return static_cast<double>(*n) * node_->scale;
  }

  /// Folds all records with a commutative, associative combiner. Partitions
  /// materialize in parallel; the fold itself runs serially in partition
  /// and record order afterwards, so the result is the serial loop's, bit
  /// for bit, even for non-associative floating-point combiners.
  template <typename F>
  Result<T> Reduce(F f, OpCost cost = {}) const {
    const int parts = node_->num_partitions;
    ctx_->BeginJob("reduce", parts);
    std::vector<std::vector<T>> outs(static_cast<std::size_t>(parts));
    Status st = detail::ParallelPartitions(ctx_, parts, [&](int p) -> Status {
      auto r = node_->Materialize(p);
      if (!r.ok()) return r.status();
      ctx_->ChargeClosureScaled(ctx_->MachineOf(p, parts),
                                static_cast<double>(r->size()), node_->scale,
                                cost);
      outs[static_cast<std::size_t>(p)] = std::move(*r);
      return Status::OK();
    });
    ctx_->EndJob();
    if (!st.ok()) return st;
    bool first = true;
    T acc{};
    for (const auto& part : outs) {
      for (const auto& x : part) {
        if (first) {
          acc = x;
          first = false;
        } else {
          acc = f(acc, x);
        }
      }
    }
    if (first) return Status::FailedPrecondition("Reduce of empty RDD");
    return acc;
  }

  /// Collect without opening a job phase; used by actions that batch
  /// several lineage evaluations into one phase. Partitions materialize in
  /// parallel and concatenate at the driver in partition order.
  Result<std::vector<T>> CollectNoJob() const {
    const int parts = node_->num_partitions;
    std::vector<std::vector<T>> outs(static_cast<std::size_t>(parts));
    Status st = detail::ParallelPartitions(ctx_, parts, [&](int p) -> Status {
      auto r = node_->Materialize(p);
      if (!r.ok()) return r.status();
      // Results cross the cluster to the driver.
      double bytes = static_cast<double>(r->size()) * node_->scale *
                     node_->record_bytes;
      ctx_->sim().ChargeNetwork(ctx_->MachineOf(p, parts), bytes);
      MLBENCH_RETURN_NOT_OK(
          ctx_->AllocateTransient(0, bytes, "driver collect buffer"));
      outs[static_cast<std::size_t>(p)] = std::move(*r);
      return Status::OK();
    });
    if (!st.ok()) return st;
    std::vector<T> all;
    for (auto& part : outs) {
      for (auto& x : part) all.push_back(std::move(x));
    }
    return all;
  }

 private:
  Context* ctx_ = nullptr;
  std::shared_ptr<detail::RddNode<T>> node_;
};

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Distributes `data` from the driver (Spark's sc.parallelize). Model-sized:
/// scale is 1 and no storage read is charged.
template <typename T>
Rdd<T> Parallelize(Context& ctx, std::vector<T> data, double record_bytes) {
  auto node = std::make_shared<detail::RddNode<T>>();
  node->ctx = &ctx;
  node->num_partitions = ctx.machines();
  node->record_bytes = record_bytes;
  node->scale = 1.0;
  int parts = node->num_partitions;
  node->compute = [data = std::move(data),
                   parts](int p) -> Result<std::vector<T>> {
    std::vector<T> out;
    for (std::size_t i = p; i < data.size();
         i += static_cast<std::size_t>(parts)) {
      out.push_back(data[i]);
    }
    return out;
  };
  return Rdd<T>(&ctx, node);
}

/// Data-scaled source (Spark's sc.textFile + parse): partition p holds
/// `actual_per_partition` records generated by `gen(p, i)`; each stands for
/// `ctx.options().scale` logical records read from distributed storage.
template <typename T, typename Gen>
Rdd<T> Generate(Context& ctx, long long actual_per_partition, Gen gen,
                double record_bytes, double parse_flops_per_record = 0) {
  auto node = std::make_shared<detail::RddNode<T>>();
  node->ctx = &ctx;
  node->num_partitions = ctx.machines();
  node->record_bytes = record_bytes;
  node->scale = ctx.options().scale;
  Context* cp = &ctx;
  int parts = node->num_partitions;
  OpCost parse_cost;
  parse_cost.flops_per_record = parse_flops_per_record;
  node->compute = [cp, gen = std::move(gen), actual_per_partition,
                   record_bytes, parts,
                   parse_cost](int p) -> Result<std::vector<T>> {
    // Storage scan + parse cost at logical scale.
    double logical_bytes = static_cast<double>(actual_per_partition) *
                           cp->options().scale * record_bytes;
    cp->sim().ChargeParallelCpuOnMachine(
        cp->MachineOf(p, parts),
        logical_bytes * cp->options().costs.storage_read_byte_s);
    cp->ChargeClosureScaled(cp->MachineOf(p, parts),
                            static_cast<double>(actual_per_partition),
                            cp->options().scale, parse_cost);
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(actual_per_partition));
    for (long long i = 0; i < actual_per_partition; ++i) {
      out.push_back(gen(p, i));
    }
    return out;
  };
  return Rdd<T>(&ctx, node);
}

// ---------------------------------------------------------------------------
// Pair-RDD operations
// ---------------------------------------------------------------------------

namespace detail {

/// Runs the map side of a shuffle over a pair RDD: evaluates every parent
/// partition, combines map-side if `merge` is non-null, hash-partitions by
/// key, and charges map CPU + serialization + network. Returns
/// per-output-partition buckets.
template <typename K, typename V, typename Merge>
Result<std::vector<std::vector<std::pair<K, V>>>> ShuffleByKey(
    Context* ctx, const std::shared_ptr<RddNode<std::pair<K, V>>>& parent,
    Merge* merge, OpCost map_cost, double out_record_bytes,
    double combined_scale = 1.0) {
  const int parts = parent->num_partitions;
  // Map tasks fan out across the host pool (partition 0 first, see
  // ParallelPartitions); each task hash-partitions into its own bucket set,
  // and the per-task sets concatenate in partition order below — the exact
  // record order the serial loop produced.
  std::vector<std::vector<std::vector<std::pair<K, V>>>> task_buckets(
      static_cast<std::size_t>(parts));
  Status st = ParallelPartitions(ctx, parts, [&](int p) -> Status {
    HashOf<K> hasher;
    auto in = parent->Materialize(p);
    if (!in.ok()) return in.status();
    int machine = ctx->MachineOf(p, parts);
    ctx->ChargeClosureScaled(machine, static_cast<double>(in->size()),
                             parent->scale, map_cost);
    // Map-side combine (Spark's reduceByKey combiner), in first-seen key
    // order: `slot` only resolves keys to positions in `combined`, so the
    // map's bucket order never reaches the shuffled record order.
    std::vector<std::pair<K, V>> combined;
    double logical_out;
    if (merge != nullptr) {
      std::unordered_map<K, std::size_t, HashOf<K>> slot;
      for (const auto& kv : *in) {
        auto [it, inserted] = slot.emplace(kv.first, combined.size());
        if (inserted) {
          combined.push_back(kv);
        } else {
          combined[it->second].second =
              (*merge)(combined[it->second].second, kv.second);
        }
      }
      // Logical combined output: the observed distinct keys at the output
      // key space's scale, capped by the logical input (combining can only
      // shrink a partition).
      logical_out =
          std::min(static_cast<double>(in->size()) * parent->scale,
                   static_cast<double>(combined.size()) * combined_scale);
    } else {
      combined = *in;
      logical_out = static_cast<double>(in->size()) * parent->scale;
    }
    double bytes = logical_out * out_record_bytes;
    ctx->ChargeSerializeBytes(machine, bytes);
    ctx->sim().ChargeNetwork(
        machine, bytes * (1.0 - 1.0 / std::max(1, ctx->machines())));
    // Framework shuffle handling per record.
    ctx->sim().ChargeParallelCpuOnMachine(
        machine, logical_out * ctx->options().costs.shuffle_record_s);
    auto& local = task_buckets[static_cast<std::size_t>(p)];
    local.resize(static_cast<std::size_t>(parts));
    for (auto& kv : combined) {
      int dest = static_cast<int>(hasher(kv.first) % parts);
      local[static_cast<std::size_t>(dest)].push_back(std::move(kv));
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  std::vector<std::vector<std::pair<K, V>>> buckets(parts);
  for (auto& local : task_buckets) {
    if (local.empty()) continue;
    for (int dest = 0; dest < parts; ++dest) {
      auto& dst = buckets[static_cast<std::size_t>(dest)];
      auto& src = local[static_cast<std::size_t>(dest)];
      dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                 std::make_move_iterator(src.end()));
    }
  }
  return buckets;
}

}  // namespace detail

/// Groups by key and folds values with `merge` (Spark's reduceByKey).
///
/// `out_scale`: logical records represented by each actual output record.
/// Aggregations onto model-sized key spaces (clusters, states, topics)
/// produce exact keys, so out_scale = 1 (the default); aggregations keyed by
/// data (documents, points) stay data-scaled and must pass the parent scale.
template <typename K, typename V, typename Merge>
Rdd<std::pair<K, V>> ReduceByKey(const Rdd<std::pair<K, V>>& in, Merge merge,
                                 OpCost map_cost = {}, double out_scale = 1.0,
                                 double reduce_flops_per_record = 0) {
  auto parent = in.node();
  Context* ctx = in.context();
  auto node = std::make_shared<detail::RddNode<std::pair<K, V>>>();
  node->ctx = ctx;
  node->num_partitions = parent->num_partitions;
  node->record_bytes = parent->record_bytes;
  node->scale = out_scale;
  auto state =
      std::make_shared<std::vector<std::vector<std::pair<K, V>>>>();
  auto done = std::make_shared<bool>(false);
  std::weak_ptr<detail::RddNode<std::pair<K, V>>> node_w(node);
  node->compute = [parent, ctx, merge = std::move(merge), map_cost, state,
                   done, node_w, reduce_flops_per_record](int p)
      -> Result<std::vector<std::pair<K, V>>> {
    auto self = node_w.lock();
    if (!*done) {
      auto merge_copy = merge;
      auto buckets =
          detail::ShuffleByKey<K, V>(ctx, parent, &merge_copy, map_cost,
                                     self->record_bytes, self->scale);
      if (!buckets.ok()) return buckets.status();
      const int parts = parent->num_partitions;
      state->resize(parts);
      // Reduce tasks are independent per output partition; fan out.
      MLBENCH_RETURN_NOT_OK(
          detail::ParallelPartitions(ctx, parts, [&](int q) -> Status {
            int machine = ctx->MachineOf(q, parts);
            // Fold into first-seen key order; the map only resolves keys
            // to output slots, so bucket order cannot leak into results.
            std::unordered_map<K, std::size_t, detail::HashOf<K>> slot;
            std::vector<std::pair<K, V>> reduced;
            for (auto& kv : (*buckets)[q]) {
              auto [it, inserted] = slot.emplace(kv.first, reduced.size());
              if (inserted) {
                reduced.push_back(std::move(kv));
              } else {
                reduced[it->second].second =
                    merge(reduced[it->second].second, kv.second);
              }
            }
            // Reduce-side buffer: logical bytes of the aggregate, transient.
            double logical =
                static_cast<double>(reduced.size()) * self->scale;
            MLBENCH_RETURN_NOT_OK(ctx->AllocateTransient(
                machine, logical * self->record_bytes,
                "shuffle reduce buffer"));
            ctx->sim().ChargeParallelCpuOnMachine(
                machine,
                logical * (ctx->lang().per_record_s +
                           reduce_flops_per_record * ctx->lang().flop_s));
            (*state)[q] = std::move(reduced);
            return Status::OK();
          }));
      *done = true;
    }
    return (*state)[p];
  };
  return Rdd<std::pair<K, V>>(ctx, node);
}

/// Applies `f` to each value, keeping keys and partitioning.
template <typename K, typename V, typename F>
auto MapValues(const Rdd<std::pair<K, V>>& in, F f, OpCost cost = {},
               double out_bytes = -1)
    -> Rdd<std::pair<K, std::invoke_result_t<F, const V&>>> {
  using W = std::invoke_result_t<F, const V&>;
  return in.Map(
      [f = std::move(f)](const std::pair<K, V>& kv) {
        return std::pair<K, W>(kv.first, f(kv.second));
      },
      cost, out_bytes);
}

/// Collects a pair RDD into a driver-side hash map (Spark collectAsMap).
template <typename K, typename V>
Result<std::unordered_map<K, V, detail::HashOf<K>>> CollectAsMap(
    const Rdd<std::pair<K, V>>& in) {
  auto rows = in.Collect();
  if (!rows.ok()) return rows.status();
  std::unordered_map<K, V, detail::HashOf<K>> out;
  for (auto& kv : *rows) out[kv.first] = std::move(kv.second);
  return out;
}

/// Groups values by key, materializing full value lists on the reduce side
/// (Spark's groupByKey: no combiner, maximal shuffle and memory).
template <typename K, typename V>
Rdd<std::pair<K, std::vector<V>>> GroupByKey(const Rdd<std::pair<K, V>>& in,
                                             OpCost map_cost = {},
                                             double out_scale = -1) {
  auto parent = in.node();
  Context* ctx = in.context();
  using Out = std::pair<K, std::vector<V>>;
  auto node = std::make_shared<detail::RddNode<Out>>();
  node->ctx = ctx;
  node->num_partitions = parent->num_partitions;
  node->record_bytes = parent->record_bytes;  // per grouped value
  node->scale = out_scale < 0 ? parent->scale : out_scale;
  double value_scale = parent->scale;
  auto state = std::make_shared<std::vector<std::vector<Out>>>();
  auto done = std::make_shared<bool>(false);
  std::weak_ptr<detail::RddNode<Out>> node_w(node);
  node->compute = [parent, ctx, map_cost, state, done, value_scale,
                   node_w](int p) -> Result<std::vector<Out>> {
    auto self = node_w.lock();
    if (!*done) {
      using MergeFn = V (*)(const V&, const V&);
      auto buckets = detail::ShuffleByKey<K, V>(
          ctx, parent, static_cast<MergeFn*>(nullptr), map_cost,
          self->record_bytes);
      if (!buckets.ok()) return buckets.status();
      const int parts = parent->num_partitions;
      state->resize(parts);
      MLBENCH_RETURN_NOT_OK(
          detail::ParallelPartitions(ctx, parts, [&](int q) -> Status {
            int machine = ctx->MachineOf(q, parts);
            // Group into first-seen key order; the map only resolves keys
            // to output slots, so bucket order cannot leak into results.
            std::unordered_map<K, std::size_t, detail::HashOf<K>> slot;
            std::vector<Out> grouped;
            double n_in = static_cast<double>((*buckets)[q].size());
            for (auto& kv : (*buckets)[q]) {
              auto [it, inserted] = slot.emplace(kv.first, grouped.size());
              if (inserted) grouped.push_back(Out{kv.first, {}});
              grouped[it->second].second.push_back(std::move(kv.second));
            }
            // All grouped values are resident on the reduce machine.
            MLBENCH_RETURN_NOT_OK(ctx->AllocateTransient(
                machine, n_in * value_scale * self->record_bytes,
                "groupByKey buffer"));
            ctx->sim().ChargeParallelCpuOnMachine(
                machine, n_in * value_scale * ctx->lang().per_record_s);
            (*state)[q] = std::move(grouped);
            return Status::OK();
          }));
      *done = true;
    }
    return (*state)[p];
  };
  return Rdd<Out>(ctx, node);
}

/// Inner equi-join of two pair RDDs (cogroup-based hash join). Both sides'
/// shuffled values are resident on the reduce machines — the memory profile
/// that sank the paper's word-based Spark HMM (Section 7.5).
template <typename K, typename V, typename W>
Rdd<std::pair<K, std::pair<V, W>>> Join(const Rdd<std::pair<K, V>>& left,
                                        const Rdd<std::pair<K, W>>& right,
                                        double out_scale) {
  auto lparent = left.node();
  auto rparent = right.node();
  Context* ctx = left.context();
  using Out = std::pair<K, std::pair<V, W>>;
  auto node = std::make_shared<detail::RddNode<Out>>();
  node->ctx = ctx;
  node->num_partitions = lparent->num_partitions;
  node->record_bytes = lparent->record_bytes + rparent->record_bytes;
  node->scale = out_scale;
  auto state = std::make_shared<std::vector<std::vector<Out>>>();
  auto done = std::make_shared<bool>(false);
  std::weak_ptr<detail::RddNode<Out>> node_w(node);
  node->compute = [lparent, rparent, ctx, state, done,
                   node_w](int p) -> Result<std::vector<Out>> {
    auto self = node_w.lock();
    (void)self;
    if (!*done) {
      using MergeV = V (*)(const V&, const V&);
      using MergeW = W (*)(const W&, const W&);
      auto lb = detail::ShuffleByKey<K, V>(ctx, lparent,
                                           static_cast<MergeV*>(nullptr),
                                           OpCost{}, lparent->record_bytes);
      if (!lb.ok()) return lb.status();
      auto rb = detail::ShuffleByKey<K, W>(ctx, rparent,
                                           static_cast<MergeW*>(nullptr),
                                           OpCost{}, rparent->record_bytes);
      if (!rb.ok()) return rb.status();
      const int parts = lparent->num_partitions;
      state->resize(parts);
      MLBENCH_RETURN_NOT_OK(
          detail::ParallelPartitions(ctx, parts, [&](int q) -> Status {
            int machine = ctx->MachineOf(q, parts);
            double l_n = static_cast<double>((*lb)[q].size());
            double r_n = static_cast<double>((*rb)[q].size());
            // Cogroup: both sides resident.
            MLBENCH_RETURN_NOT_OK(ctx->AllocateTransient(
                machine,
                l_n * lparent->scale * lparent->record_bytes +
                    r_n * rparent->scale * rparent->record_bytes,
                "join cogroup buffer"));
            ctx->sim().ChargeParallelCpuOnMachine(
                machine, (l_n * lparent->scale + r_n * rparent->scale) *
                             ctx->lang().per_record_s);
            std::unordered_map<K, std::vector<V>, detail::HashOf<K>> build;
            for (auto& kv : (*lb)[q]) build[kv.first].push_back(kv.second);
            std::vector<Out> out;
            for (auto& kw : (*rb)[q]) {
              auto it = build.find(kw.first);
              if (it == build.end()) continue;
              for (const auto& v : it->second) {
                out.emplace_back(kw.first, std::make_pair(v, kw.second));
              }
            }
            (*state)[q] = std::move(out);
            return Status::OK();
          }));
      *done = true;
    }
    return (*state)[p];
  };
  return Rdd<Out>(ctx, node);
}

}  // namespace mlbench::dataflow
