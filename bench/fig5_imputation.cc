// Reproduces Figure 5 of the paper: Gaussian missing-value imputation --
// the GMM simulation with one extra step re-drawing each point's censored
// coordinates (10-d data, ~50% of values censored via per-point
// Beta(1,1) rates, 10M points/machine). The results mirror the GMM's,
// except Spark slows sharply because the changing data cannot be cached.

#include <vector>

#include "core/gmm_bsp.h"
#include "core/gmm_dataflow.h"
#include "core/gmm_gas.h"
#include "core/gmm_reldb.h"
#include "core/report.h"

namespace mlbench::core {
namespace {

GmmExperiment MakeExp(int machines, bool super, sim::Language lang) {
  GmmExperiment exp;
  exp.config.machines = machines;
  exp.config.iterations = 3;
  exp.dim = 10;
  exp.k = 10;
  exp.super_vertex = super;
  exp.language = lang;
  exp.imputation = true;
  exp.config.data.logical_per_machine = 10e6;
  exp.config.data.actual_per_machine = machines >= 100 ? 500 : 2000;
  return exp;
}

template <typename Runner>
std::vector<RunResult> Series(Runner runner, bool super, sim::Language lang,
                              bool quirk = false) {
  std::vector<RunResult> out;
  for (int machines : {5, 20, 100}) {
    int actual = quirk && machines == 100 ? 96 : machines;
    out.push_back(runner(MakeExp(actual, super, lang), nullptr));
  }
  return out;
}

}  // namespace
}  // namespace mlbench::core

int main() {
  using namespace mlbench;
  using namespace mlbench::core;
  std::vector<ReportRow> rows;
  rows.push_back({"Giraph", ImplementationLoc({"src/core/gmm_bsp.cc"}),
                  {"28:43 (0:19)", "31:23 (0:18)", "Fail"},
                  Series(&RunGmmBsp, false, sim::Language::kJava),
                  ""});
  rows.push_back(
      {"GraphLab (Super vertex)", ImplementationLoc({"src/core/gmm_gas.cc"}),
       {"6:59 (3:41)", "6:12 (8:40)", "6:08 (3:03)"},
       Series(&RunGmmGas, true, sim::Language::kCpp, /*quirk=*/true),
       "100-machine column ran at 96 machines (GraphLab boot limit)."});
  rows.push_back(
      {"Spark (Python)", ImplementationLoc({"src/core/gmm_dataflow.cc"}),
       {"1:22:48 (3:52)", "1:27:39 (4:03)", "1:29:27 (4:27)"},
       Series(&RunGmmDataflow, false, sim::Language::kPython),
       ""});
  rows.push_back({"SimSQL", ImplementationLoc({"src/core/gmm_reldb.cc"}),
                  {"28:53 (14:29)", "30:41 (15:30)", "39:33 (22:15)"},
                  Series(&RunGmmRelDb, false, sim::Language::kJava),
                  ""});
  PrintFigure("Figure 5: Gaussian imputation [avg time/iteration (init)]",
              {"5 machines", "20 machines", "100 machines"}, rows);
  return 0;
}
