// Reproduces Figure 3 of the paper: the HMM for text.
//   (a) word-based and document-based implementations at 5 machines
//   (b) super-vertex implementations at {5, 20, 100} machines
// Corpus scale matches the paper: 2.5M documents/machine, ~210 words each,
// 10,000-word dictionary, K = 20 hidden states.

#include <vector>

#include "core/hmm_bsp.h"
#include "core/hmm_dataflow.h"
#include "core/hmm_gas.h"
#include "core/hmm_reldb.h"
#include "core/report.h"

namespace mlbench::core {
namespace {

HmmExperiment MakeExp(int machines, TextGranularity gran,
                      sim::Language lang) {
  HmmExperiment exp;
  exp.config.machines = machines;
  exp.config.iterations = 3;
  exp.granularity = gran;
  exp.language = lang;
  exp.config.data.actual_per_machine = machines >= 100 ? 8 : 40;
  return exp;
}

}  // namespace
}  // namespace mlbench::core

int main() {
  using namespace mlbench;
  using namespace mlbench::core;

  {
    std::vector<ReportRow> rows;
    rows.push_back(
        {"SimSQL", ImplementationLoc({"src/core/hmm_reldb.cc"}),
         {"8:17:07 (10:51:32)", "3:42:40 (20:44)"},
         {RunHmmRelDb(MakeExp(5, TextGranularity::kWord,
                              sim::Language::kJava), nullptr),
          RunHmmRelDb(MakeExp(5, TextGranularity::kDocument,
                              sim::Language::kJava), nullptr)},
         ""});
    rows.push_back(
        {"Spark (Python)", ImplementationLoc({"src/core/hmm_dataflow.cc"}),
         {"Fail (NA)", "4:21:36 (27:36)"},
         {RunHmmDataflow(MakeExp(5, TextGranularity::kWord,
                                 sim::Language::kPython), nullptr),
          RunHmmDataflow(MakeExp(5, TextGranularity::kDocument,
                                 sim::Language::kPython), nullptr)},
         "The paper could not get Spark to perform the word-level "
         "self-join at all; our engine fails it in the cogroup buffers."});
    rows.push_back(
        {"Giraph", ImplementationLoc({"src/core/hmm_bsp.cc"}),
         {"Fail", "11:02 (7:03)"},
         {RunHmmBsp(MakeExp(5, TextGranularity::kWord,
                            sim::Language::kJava), nullptr),
          RunHmmBsp(MakeExp(5, TextGranularity::kDocument,
                            sim::Language::kJava), nullptr)},
         ""});
    PrintFigure(
        "Figure 3(a): HMM word-based and document-based (5 machines)",
        {"word-based", "document-based"}, rows);
  }

  {
    auto series = [](auto runner, sim::Language lang, bool quirk = false) {
      std::vector<RunResult> out;
      for (int machines : {5, 20, 100}) {
        int actual = quirk && machines == 100 ? 96 : machines;
        out.push_back(runner(
            MakeExp(actual, TextGranularity::kSuperVertex, lang), nullptr));
      }
      return out;
    };
    std::vector<ReportRow> rows;
    rows.push_back({"Giraph", 0,
                    {"2:27 (1:12)", "2:44 (1:52)", "3:12 (2:56)"},
                    series(&RunHmmBsp, sim::Language::kJava),
                    ""});
    rows.push_back({"GraphLab", ImplementationLoc({"src/core/hmm_gas.cc"}),
                    {"20:39 (16:28)", "Fail", "Fail"},
                    series(&RunHmmGas, sim::Language::kCpp, true),
                    ""});
    rows.push_back({"Spark (Python)", 0,
                    {"3:45:58 (11:02)", "4:01:02 (13:04)", "Fail"},
                    series(&RunHmmDataflow, sim::Language::kPython),
                    ""});
    rows.push_back({"SimSQL", 0,
                    {"2:05:12 (1:44:45)", "2:05:31 (1:44:36)",
                     "2:19:10 (2:04:40)"},
                    series(&RunHmmRelDb, sim::Language::kJava),
                    ""});
    PrintFigure("Figure 3(b): HMM super-vertex implementations",
                {"5 machines", "20 machines", "100 machines"}, rows);
  }
  return 0;
}
