// Microbenchmarks for the numerical substrates (google-benchmark): the
// samplers and dense-linalg kernels every MCMC implementation calls in its
// inner loop. These measure *host* performance, complementing the figure
// benches which report *simulated-cluster* time.

#include <benchmark/benchmark.h>

#include "linalg/matrix.h"
#include "models/gmm.h"
#include "stats/distributions.h"

namespace {

using mlbench::linalg::Matrix;
using mlbench::linalg::Vector;

Matrix RandomSpd(std::size_t n, std::uint64_t seed) {
  mlbench::stats::Rng rng(seed);
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.NextDouble() - 0.5;
  }
  Matrix spd = MatMul(b, b.Transposed());
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

void BM_RngU64(benchmark::State& state) {
  mlbench::stats::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.NextU64());
}
BENCHMARK(BM_RngU64);

void BM_StandardNormal(benchmark::State& state) {
  mlbench::stats::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlbench::stats::SampleStandardNormal(rng));
  }
}
BENCHMARK(BM_StandardNormal);

void BM_Gamma(benchmark::State& state) {
  mlbench::stats::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlbench::stats::SampleGamma(rng, 2.5, 1.0));
  }
}
BENCHMARK(BM_Gamma);

void BM_Dirichlet(benchmark::State& state) {
  mlbench::stats::Rng rng(4);
  Vector alpha(static_cast<std::size_t>(state.range(0)), 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlbench::stats::SampleDirichlet(rng, alpha));
  }
}
BENCHMARK(BM_Dirichlet)->Arg(20)->Arg(100)->Arg(10000);

void BM_Categorical(benchmark::State& state) {
  mlbench::stats::Rng rng(5);
  Vector w(static_cast<std::size_t>(state.range(0)), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlbench::stats::SampleCategorical(rng, w));
  }
}
BENCHMARK(BM_Categorical)->Arg(20)->Arg(100);

void BM_AliasTable(benchmark::State& state) {
  mlbench::stats::Rng rng(6);
  mlbench::stats::AliasTable table(
      mlbench::stats::ZipfWeights(10000, 1.0));
  for (auto _ : state) benchmark::DoNotOptimize(table.Sample(rng));
}
BENCHMARK(BM_AliasTable);

void BM_Cholesky(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  Matrix a = RandomSpd(n, 7);
  for (auto _ : state) {
    auto l = mlbench::linalg::Cholesky(a);
    benchmark::DoNotOptimize(l);
  }
}
BENCHMARK(BM_Cholesky)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_InverseWishart(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  mlbench::stats::Rng rng(8);
  Matrix scale = RandomSpd(n, 9);
  for (auto _ : state) {
    auto w = mlbench::stats::SampleInverseWishart(
        rng, static_cast<double>(n) + 2.0, scale);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_InverseWishart)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

void BM_GmmMembership(benchmark::State& state) {
  auto d = static_cast<std::size_t>(state.range(0));
  mlbench::stats::Rng rng(10);
  mlbench::models::GmmParams params;
  params.pi = Vector(10, 0.1);
  for (int c = 0; c < 10; ++c) {
    Vector mu(d);
    for (auto& v : mu) v = rng.NextDouble();
    params.mu.push_back(std::move(mu));
    params.sigma.push_back(RandomSpd(d, 11 + c));
  }
  auto sampler = mlbench::models::GmmMembershipSampler::Build(params);
  Vector x(d, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Sample(rng, x));
  }
}
BENCHMARK(BM_GmmMembership)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
