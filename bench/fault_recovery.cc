// Recovery-overhead study for the fault model (DESIGN.md §12): runs the
// GMM workload on all four platforms under seeded fault schedules and
// reports how simulated wall time degrades with the failure rate, and how
// the Giraph checkpoint / GraphLab snapshot interval trades steady-state
// overhead against replay cost. Emits BENCH_faults.json (override with
// MLBENCH_BENCH_JSON).
//
// Every run is deterministic: the schedule is a pure function of the
// fault seed, so re-running this binary reproduces the numbers bit for
// bit at any MLBENCH_THREADS.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/gmm_bsp.h"
#include "core/gmm_dataflow.h"
#include "core/gmm_gas.h"
#include "core/gmm_reldb.h"

namespace mlbench::core {
namespace {

using Runner = RunResult (*)(const GmmExperiment&, models::GmmParams*);

struct Platform {
  const char* name;
  Runner runner;
  bool super_vertex;
};

const Platform kPlatforms[] = {
    {"simsql", &RunGmmRelDb, false},
    {"graphlab", &RunGmmGas, true},
    {"spark", &RunGmmDataflow, false},
    {"giraph", &RunGmmBsp, false},
};

constexpr std::uint64_t kFaultSeed = 4242;

GmmExperiment BaseExp(bool super) {
  GmmExperiment exp;
  exp.config.machines = 5;
  exp.config.iterations = 6;
  exp.dim = 3;
  exp.k = 2;
  exp.super_vertex = super;
  exp.config.data.logical_per_machine = 1e6;
  exp.config.data.actual_per_machine = 200;
  exp.config.seed = 77;
  return exp;
}

double TotalSeconds(const RunResult& r) {
  double t = r.init_seconds;
  for (double s : r.iteration_seconds) t += s;
  return t;
}

struct Row {
  std::string platform;
  double crash_rate = 0;
  double straggler_rate = 0;
  int interval = 0;
  bool completed = false;
  double total_seconds = 0;
  double baseline_seconds = 0;
  int recovery_events = 0;
  double recovery_seconds = 0;
};

void PrintRow(std::FILE* f, const Row& r, bool last, bool with_interval) {
  std::fprintf(f,
               "    {\"platform\": \"%s\", \"crash_rate\": %g, "
               "\"straggler_rate\": %g, ",
               r.platform.c_str(), r.crash_rate, r.straggler_rate);
  if (with_interval) std::fprintf(f, "\"interval\": %d, ", r.interval);
  double overhead = r.baseline_seconds > 0
                        ? (r.total_seconds / r.baseline_seconds - 1.0) * 100.0
                        : 0.0;
  std::fprintf(f,
               "\"completed\": %s, \"total_seconds\": %.6f, "
               "\"overhead_pct\": %.3f, \"recovery_events\": %d, "
               "\"recovery_seconds\": %.6f}%s\n",
               r.completed ? "true" : "false", r.total_seconds, overhead,
               r.recovery_events, r.recovery_seconds, last ? "" : ",");
}

Row RunOne(const Platform& p, double crash_rate, double straggler_rate,
           int interval, double baseline) {
  GmmExperiment exp = BaseExp(p.super_vertex);
  if (crash_rate > 0 || straggler_rate > 0) {
    exp.config.faults.seed = kFaultSeed;
    exp.config.faults.rates.crash = crash_rate;
    exp.config.faults.rates.straggler = straggler_rate;
    exp.config.faults.rates.straggler_factor = 2.0;
    exp.config.faults.rates.send_failure = straggler_rate;
  }
  exp.config.faults.checkpoint_interval = interval;
  exp.config.faults.snapshot_interval = interval;
  RunResult r = p.runner(exp, nullptr);
  Row row;
  row.platform = p.name;
  row.crash_rate = crash_rate;
  row.straggler_rate = straggler_rate;
  row.interval = interval;
  // A permanent failure (retry budget exhausted) abandons the job — that
  // is itself a data point, reported as completed=false.
  row.completed = r.ok();
  row.total_seconds = TotalSeconds(r);
  row.baseline_seconds = baseline;
  row.recovery_events = r.recovery_events;
  row.recovery_seconds = r.recovery_seconds;
  if (!r.ok()) {
    std::fprintf(stderr, "  [%s crash=%g interval=%d] abandoned: %s\n",
                 p.name, crash_rate, interval, r.status.ToString().c_str());
  }
  return row;
}

int Main() {
  const char* env = std::getenv("MLBENCH_BENCH_JSON");
  std::string path = env != nullptr ? env : "BENCH_faults.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fault_recovery: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"gmm 3d k=2, 5 machines, "
                  "6 iterations\",\n  \"fault_seed\": %llu,\n",
               static_cast<unsigned long long>(kFaultSeed));

  // ---- Overhead vs failure rate (checkpoint/snapshot every 2 units) --------
  std::fprintf(f, "  \"rate_sweep\": [\n");
  const double kRates[] = {0.0, 0.02, 0.05, 0.1, 0.2};
  for (std::size_t pi = 0; pi < std::size(kPlatforms); ++pi) {
    const Platform& p = kPlatforms[pi];
    double baseline = 0;
    for (std::size_t ri = 0; ri < std::size(kRates); ++ri) {
      Row row = RunOne(p, kRates[ri], kRates[ri] / 2.0, /*interval=*/2,
                       baseline);
      if (ri == 0) {
        baseline = row.total_seconds;
        row.baseline_seconds = baseline;
      }
      bool last = pi + 1 == std::size(kPlatforms) &&
                  ri + 1 == std::size(kRates);
      PrintRow(f, row, last, /*with_interval=*/false);
      std::printf("%-9s crash=%.2f  total=%10.1fs  events=%3d  "
                  "recovery=%8.1fs%s\n",
                  p.name, kRates[ri], row.total_seconds, row.recovery_events,
                  row.recovery_seconds, row.completed ? "" : "  [abandoned]");
    }
  }
  std::fprintf(f, "  ],\n");

  // ---- Overhead vs checkpoint/snapshot interval (BSP + GAS only) -----------
  // interval 0 = default off: a crash replays the whole run so far.
  std::fprintf(f, "  \"interval_sweep\": [\n");
  const Platform kSnapshotters[] = {kPlatforms[1], kPlatforms[3]};
  const int kIntervals[] = {0, 1, 2, 4};
  for (std::size_t pi = 0; pi < std::size(kSnapshotters); ++pi) {
    const Platform& p = kSnapshotters[pi];
    double baseline = RunOne(p, 0.0, 0.0, 0, 0).total_seconds;
    for (std::size_t ii = 0; ii < std::size(kIntervals); ++ii) {
      Row row = RunOne(p, 0.1, 0.0, kIntervals[ii], baseline);
      bool last = pi + 1 == std::size(kSnapshotters) &&
                  ii + 1 == std::size(kIntervals);
      PrintRow(f, row, last, /*with_interval=*/true);
      std::printf("%-9s interval=%d  total=%10.1fs  recovery=%8.1fs%s\n",
                  p.name, kIntervals[ii], row.total_seconds,
                  row.recovery_seconds, row.completed ? "" : "  [abandoned]");
    }
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("fault_recovery: wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace mlbench::core

int main() { return mlbench::core::Main(); }
