// Reproduces the paper's Section 3.4 sanity check: running the same MCMC
// simulation on five different days / compute clusters, the standard
// deviation of the per-iteration time was only 32 seconds out of ~27
// minutes. We enable the simulator's multiplicative run-to-run noise and
// run the SimSQL GMM five times with different noise seeds.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/str_format.h"
#include "core/gmm_reldb.h"

int main() {
  using namespace mlbench;
  using namespace mlbench::core;
  std::vector<double> times;
  for (std::uint64_t day = 1; day <= 5; ++day) {
    GmmExperiment exp;
    exp.config.machines = 5;
    exp.config.iterations = 3;
    exp.config.data.logical_per_machine = 10e6;
    exp.config.data.actual_per_machine = 1000;
    exp.config.seed = 2014;  // same simulation...
    exp.config.noise_seed = day;  // ...different day
    auto r = RunGmmRelDb(exp, nullptr);
    if (!r.ok()) {
      std::printf("day %llu failed: %s\n",
                  static_cast<unsigned long long>(day),
                  r.status.ToString().c_str());
      return 1;
    }
    times.push_back(r.avg_iteration_seconds());
    std::printf("day %llu: %s per iteration\n",
                static_cast<unsigned long long>(day),
                FormatDuration(times.back()).c_str());
  }
  double mean = 0;
  for (double t : times) mean += t;
  mean /= times.size();
  double var = 0;
  for (double t : times) var += (t - mean) * (t - mean);
  double sd = std::sqrt(var / times.size());
  std::printf(
      "\nSection 3.4 check: mean per-iteration %s, day-to-day sd %.0f s\n"
      "paper: sd of 32 s out of 27 minutes on average\n",
      FormatDuration(mean).c_str(), sd);
  return 0;
}
