// Microbenchmarks for the expression bytecode VM: predicate filtering and
// computed projections on the columnar engine, with the per-row lambda
// interpretation (_Naive, one Tuple materialized per row) against the
// compiled batch-fused program (_Kernel, one dispatch loop per chunk).
// The two paths are bit-identical in results and simulated charges (see
// tests/expr_vm_test.cc); these pairs measure the host-side wall time
// only. Writes BENCH_expr.json with per-pair speedups via bench_json.h.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>

#include "bench_json.h"
#include "reldb/database.h"
#include "reldb/expr_vm.h"
#include "reldb/rel.h"
#include "sim/cluster_sim.h"
#include "sim/machine.h"

namespace {

using namespace mlbench;
using reldb::AsDouble;
using reldb::ColExpr;
using reldb::Database;
using reldb::Rel;
using reldb::ScalarExpr;
using reldb::Schema;
using reldb::Table;
using reldb::Tuple;

/// Columnar database with an n-row data table, the stored batch built
/// outside the timed region (as the drivers do once per run).
struct ExprBench {
  sim::ClusterSim sim;
  Database db;

  explicit ExprBench(std::int64_t n)
      : sim(sim::Ec2M2XLargeCluster(5)), db(&sim, sim::RelDbCosts{}, 42) {
    db.set_columnar(true);
    Table data(Schema{"data_id", "dim_id", "data_val"}, 1e6);
    data.Reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      data.Append(Tuple{i / 8, i % 8, 0.25 * static_cast<double>(i % 997)});
    }
    db.Put("data", std::move(data));
    db.GetColumnar("data");
  }
};

template <typename PlanFn>
void ExprOperatorBench(benchmark::State& state, bool vm, PlanFn plan) {
  ExprBench b(state.range(0));
  b.db.set_expr_vm(vm);
  for (auto _ : state) {
    b.db.BeginQuery("bench");
    // The operators execute eagerly; logical_rows() observes the result
    // without forcing a row-form conversion (identical on both sides,
    // it would only dilute the expression-evaluation delta under test).
    benchmark::DoNotOptimize(plan(b.db).logical_rows());
    b.db.EndQuery();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// Arithmetic-heavy predicate: (val * 2 + dim) * (val - 3) > val * val.
// The naive side evaluates the identical expression through a Tuple
// lambda; the kernel side runs the compiled program's SelectBatch.

void BM_ExprFilter_Naive(benchmark::State& state) {
  ExprOperatorBench(state, false, [](Database& db) {
    return Rel::Scan(db, "data").Filter([](const Tuple& t) {
      const double val = AsDouble(t[2]);
      const double dim = AsDouble(t[1]);
      return (val * 2.0 + dim) * (val - 3.0) > val * val;
    });
  });
}
BENCHMARK(BM_ExprFilter_Naive)->Arg(1 << 16);

void BM_ExprFilter_Kernel(benchmark::State& state) {
  ExprOperatorBench(state, true, [](Database& db) {
    return Rel::Scan(db, "data").Filter(ScalarExpr::Compare(
        ScalarExpr::CmpOp::kGt,
        ScalarExpr::Mul(
            ScalarExpr::Add(
                ScalarExpr::Mul(ScalarExpr::Col(2), ScalarExpr::Const(2.0)),
                ScalarExpr::Col(1)),
            ScalarExpr::Sub(ScalarExpr::Col(2), ScalarExpr::Const(3.0))),
        ScalarExpr::Mul(ScalarExpr::Col(2), ScalarExpr::Col(2))));
  });
}
BENCHMARK(BM_ExprFilter_Kernel)->Arg(1 << 16);

// Computed projection: two arithmetic output columns plus a passthrough.
// The naive side uses ColExpr::Fn lambdas (per-row materialization); the
// kernel side uses ColExpr::Expr compiled programs (EvalBatch).

void BM_ExprProject_Naive(benchmark::State& state) {
  ExprOperatorBench(state, false, [](Database& db) {
    return Rel::Scan(db, "data").Project(
        Schema{"data_id", "poly", "scaled"},
        {ColExpr::Col(0), ColExpr::Fn([](const Tuple& t) {
           const double val = AsDouble(t[2]);
           return (val * val - 2.0 * val) * (val + 1.0);
         }),
         ColExpr::Fn([](const Tuple& t) {
           return AsDouble(t[2]) * 0.5 + AsDouble(t[1]);
         })});
  });
}
BENCHMARK(BM_ExprProject_Naive)->Arg(1 << 16);

void BM_ExprProject_Kernel(benchmark::State& state) {
  ExprOperatorBench(state, true, [](Database& db) {
    return Rel::Scan(db, "data").Project(
        Schema{"data_id", "poly", "scaled"},
        {ColExpr::Col(0),
         ColExpr::Expr(ScalarExpr::Mul(
             ScalarExpr::Sub(
                 ScalarExpr::Mul(ScalarExpr::Col(2), ScalarExpr::Col(2)),
                 ScalarExpr::Mul(ScalarExpr::Const(2.0), ScalarExpr::Col(2))),
             ScalarExpr::Add(ScalarExpr::Col(2), ScalarExpr::Const(1.0)))),
         ColExpr::Expr(ScalarExpr::Add(
             ScalarExpr::Mul(ScalarExpr::Col(2), ScalarExpr::Const(0.5)),
             ScalarExpr::Col(1)))});
  });
}
BENCHMARK(BM_ExprProject_Kernel)->Arg(1 << 16);

// Int-set membership: the naive side is the typed interpreter scan (the
// pre-VM columnar fast path), the kernel side the compiled kIntIn opcode.

void BM_ExprFilterIntIn_Naive(benchmark::State& state) {
  ExprOperatorBench(state, false, [](Database& db) {
    return Rel::Scan(db, "data").FilterIntIn("dim_id", {0, 3, 5});
  });
}
BENCHMARK(BM_ExprFilterIntIn_Naive)->Arg(1 << 16);

void BM_ExprFilterIntIn_Kernel(benchmark::State& state) {
  ExprOperatorBench(state, true, [](Database& db) {
    return Rel::Scan(db, "data").FilterIntIn("dim_id", {0, 3, 5});
  });
}
BENCHMARK(BM_ExprFilterIntIn_Kernel)->Arg(1 << 16);

}  // namespace

int main(int argc, char** argv) {
  return mlbench::bench::RunWithJson(argc, argv, "BENCH_expr.json");
}
