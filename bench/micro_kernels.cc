// Microbenchmarks for the hot-path kernel library: every fused/batched
// kernel against the naive path it replaced (in-bench copies of the
// pre-kernel implementations, so the comparison survives future cleanups
// of the reference code). Writes BENCH_kernels.json with per-pair speedups
// via bench_json.h.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_json.h"
#include "kernels/categorical.h"
#include "kernels/gaussian.h"
#include "kernels/lda_token.h"
#include "linalg/blocked.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "models/collapsed_lda.h"
#include "models/gmm.h"
#include "models/hmm.h"
#include "models/lda.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace {

using namespace mlbench;
using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------------------
// Categorical draw: two-pass Vector weights + SampleCategorical vs fused
// ---------------------------------------------------------------------------

void BM_Categorical_Naive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> w(n);
  stats::Rng wr(1);
  for (auto& v : w) v = wr.NextDouble() + 0.01;
  stats::Rng rng(2);
  for (auto _ : state) {
    Vector weights(n);
    for (std::size_t i = 0; i < n; ++i) weights[i] = w[i];
    benchmark::DoNotOptimize(stats::SampleCategorical(rng, weights));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Categorical_Naive)->Arg(100)->Unit(benchmark::kNanosecond);

void BM_Categorical_Kernel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> w(n);
  stats::Rng wr(1);
  for (auto& v : w) v = wr.NextDouble() + 0.01;
  stats::Rng rng(2);
  kernels::CategoricalScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::FusedCategorical(
        rng, n, &scratch, [&](std::size_t i) { return w[i]; }));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Categorical_Kernel)->Arg(100)->Unit(benchmark::kNanosecond);

// ---------------------------------------------------------------------------
// GMM membership: allocating two-pass sampler vs fused scratch kernel
// ---------------------------------------------------------------------------

models::GmmParams BenchGmmParams(std::size_t k, std::size_t dim) {
  stats::Rng rng(7);
  models::GmmParams p;
  p.pi = Vector(k);
  for (std::size_t c = 0; c < k; ++c) {
    p.pi[c] = rng.NextDouble() + 0.1;
    Vector mu(dim);
    for (auto& v : mu) v = 4.0 * (rng.NextDouble() - 0.5);
    p.mu.push_back(std::move(mu));
    Matrix s(dim, dim);
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        double v = 0.1 * (rng.NextDouble() - 0.5);
        s(i, j) = v;
        s(j, i) = v;
      }
      s(i, i) = 1.0 + rng.NextDouble();
    }
    p.sigma.push_back(std::move(s));
  }
  return p;
}

std::vector<Vector> BenchGmmPoints(std::size_t n, std::size_t dim) {
  stats::Rng rng(9);
  std::vector<Vector> pts;
  for (std::size_t i = 0; i < n; ++i) {
    Vector x(dim);
    for (auto& v : x) v = 8.0 * (rng.NextDouble() - 0.5);
    pts.push_back(std::move(x));
  }
  return pts;
}

void BM_GmmMembership_Naive(benchmark::State& state) {
  const std::size_t k = 10, dim = 10;
  auto params = BenchGmmParams(k, dim);
  auto sampler = models::GmmMembershipSampler::Build(params);
  if (!sampler.ok()) state.SkipWithError("build failed");
  auto points = BenchGmmPoints(256, dim);
  stats::Rng rng(3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Sample(rng, points[i]));
    i = (i + 1) % points.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GmmMembership_Naive)->Unit(benchmark::kNanosecond);

void BM_GmmMembership_Kernel(benchmark::State& state) {
  const std::size_t k = 10, dim = 10;
  auto params = BenchGmmParams(k, dim);
  auto sampler = models::GmmMembershipSampler::Build(params);
  if (!sampler.ok()) state.SkipWithError("build failed");
  auto points = BenchGmmPoints(256, dim);
  stats::Rng rng(3);
  models::GmmMembershipSampler::Scratch scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Sample(rng, points[i], &scratch));
    i = (i + 1) % points.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GmmMembership_Kernel)->Unit(benchmark::kNanosecond);

// ---------------------------------------------------------------------------
// Collapsed-LDA sweep: row-major two-pass reference vs word-major kernel
// ---------------------------------------------------------------------------

struct LdaBenchSetup {
  models::LdaHyper hyper;
  std::vector<models::LdaDocument> docs;
};

LdaBenchSetup BenchCorpus(std::size_t topics, std::size_t vocab,
                          std::size_t n_docs, std::size_t doc_len) {
  LdaBenchSetup s;
  s.hyper = models::LdaHyper{topics, vocab, 0.5, 0.1};
  stats::Rng rng(17);
  for (std::size_t d = 0; d < n_docs; ++d) {
    models::LdaDocument doc;
    for (std::size_t i = 0; i < doc_len; ++i) {
      doc.words.push_back(
          static_cast<std::uint32_t>(rng.NextBounded(vocab)));
    }
    models::InitLdaDocument(rng, s.hyper, &doc);
    s.docs.push_back(std::move(doc));
  }
  return s;
}

/// In-bench copy of the pre-kernel collapsed sampler (row-major nested
/// vectors, two-pass weights + SampleCategorical).
class NaiveCollapsedLda {
 public:
  NaiveCollapsedLda(const models::LdaHyper& hyper,
                    std::vector<models::LdaDocument> docs, std::uint64_t seed)
      : hyper_(hyper), docs_(std::move(docs)), rng_(seed) {
    n_tw_.assign(hyper_.topics, std::vector<double>(hyper_.vocab, 0.0));
    n_t_.assign(hyper_.topics, 0.0);
    n_dt_.assign(docs_.size(), std::vector<double>(hyper_.topics, 0.0));
    for (std::size_t d = 0; d < docs_.size(); ++d) {
      for (std::size_t pos = 0; pos < docs_[d].words.size(); ++pos) {
        std::size_t t = docs_[d].topics[pos];
        n_tw_[t][docs_[d].words[pos]] += 1;
        n_t_[t] += 1;
        n_dt_[d][t] += 1;
      }
    }
  }

  void Sweep() {
    Vector w(hyper_.topics);
    double v = static_cast<double>(hyper_.vocab);
    for (std::size_t d = 0; d < docs_.size(); ++d) {
      auto& doc = docs_[d];
      for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
        std::uint32_t word = doc.words[pos];
        std::size_t old_t = doc.topics[pos];
        n_tw_[old_t][word] -= 1;
        n_t_[old_t] -= 1;
        n_dt_[d][old_t] -= 1;
        for (std::size_t t = 0; t < hyper_.topics; ++t) {
          w[t] = (n_dt_[d][t] + hyper_.alpha) *
                 (n_tw_[t][word] + hyper_.beta) /
                 (n_t_[t] + hyper_.beta * v);
        }
        std::size_t new_t = stats::SampleCategorical(rng_, w);
        doc.topics[pos] = static_cast<std::uint8_t>(new_t);
        n_tw_[new_t][word] += 1;
        n_t_[new_t] += 1;
        n_dt_[d][new_t] += 1;
      }
    }
  }

 private:
  models::LdaHyper hyper_;
  std::vector<models::LdaDocument> docs_;
  stats::Rng rng_;
  std::vector<std::vector<double>> n_tw_;
  std::vector<double> n_t_;
  std::vector<std::vector<double>> n_dt_;
};

void BM_CollapsedLdaSweep_Naive(benchmark::State& state) {
  auto setup = BenchCorpus(/*topics=*/50, /*vocab=*/5000, /*docs=*/100,
                           /*doc_len=*/100);
  NaiveCollapsedLda model(setup.hyper, setup.docs, 5);
  for (auto _ : state) {
    model.Sweep();
  }
  state.SetItemsProcessed(state.iterations() * 100 * 100);
}
BENCHMARK(BM_CollapsedLdaSweep_Naive)->Unit(benchmark::kMillisecond);

void BM_CollapsedLdaSweep_Kernel(benchmark::State& state) {
  auto setup = BenchCorpus(/*topics=*/50, /*vocab=*/5000, /*docs=*/100,
                           /*doc_len=*/100);
  models::CollapsedLda model(setup.hyper, setup.docs, 5);
  for (auto _ : state) {
    model.Sweep();
  }
  state.SetItemsProcessed(state.iterations() * 100 * 100);
}
BENCHMARK(BM_CollapsedLdaSweep_Kernel)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// HMM state resampling: reference vs prepared kernel sampler
// ---------------------------------------------------------------------------

struct HmmBenchSetup {
  models::HmmParams params;
  std::vector<models::HmmDocument> docs;
};

HmmBenchSetup BenchHmm(std::size_t states, std::size_t vocab,
                       std::size_t n_docs, std::size_t doc_len) {
  HmmBenchSetup s;
  models::HmmHyper hyper{states, vocab, 1.0, 0.1};
  stats::Rng rng(23);
  s.params = models::SampleHmmPrior(rng, hyper);
  for (std::size_t d = 0; d < n_docs; ++d) {
    models::HmmDocument doc;
    for (std::size_t i = 0; i < doc_len; ++i) {
      doc.words.push_back(
          static_cast<std::uint32_t>(rng.NextBounded(vocab)));
    }
    models::InitHmmStates(rng, states, &doc);
    s.docs.push_back(std::move(doc));
  }
  return s;
}

void BM_HmmResample_Naive(benchmark::State& state) {
  auto setup = BenchHmm(/*states=*/20, /*vocab=*/10000, /*docs=*/50,
                        /*doc_len=*/200);
  stats::Rng rng(31);
  int iter = 0;
  for (auto _ : state) {
    for (auto& doc : setup.docs) {
      models::ResampleHmmStates(rng, setup.params, iter, &doc);
    }
    ++iter;
  }
  state.SetItemsProcessed(state.iterations() * 50 * 200 / 2);
}
BENCHMARK(BM_HmmResample_Naive)->Unit(benchmark::kMillisecond);

void BM_HmmResample_Kernel(benchmark::State& state) {
  auto setup = BenchHmm(/*states=*/20, /*vocab=*/10000, /*docs=*/50,
                        /*doc_len=*/200);
  stats::Rng rng(31);
  models::HmmSampler sampler;
  sampler.Prepare(setup.params, 50 * 200);
  int iter = 0;
  for (auto _ : state) {
    for (auto& doc : setup.docs) {
      sampler.Resample(rng, iter, &doc);
    }
    ++iter;
  }
  state.SetItemsProcessed(state.iterations() * 50 * 200 / 2);
}
BENCHMARK(BM_HmmResample_Kernel)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// LDA document resampling: reference vs prepared kernel sampler
// ---------------------------------------------------------------------------

void BM_LdaDocResample_Naive(benchmark::State& state) {
  auto setup = BenchCorpus(/*topics=*/100, /*vocab=*/10000, /*docs=*/50,
                           /*doc_len=*/200);
  stats::Rng prior(29);
  auto params = models::SampleLdaPrior(prior, setup.hyper);
  stats::Rng rng(37);
  for (auto _ : state) {
    for (auto& doc : setup.docs) {
      models::ResampleLdaDocument(rng, setup.hyper, params, &doc, nullptr);
    }
  }
  state.SetItemsProcessed(state.iterations() * 50 * 200);
}
BENCHMARK(BM_LdaDocResample_Naive)->Unit(benchmark::kMillisecond);

void BM_LdaDocResample_Kernel(benchmark::State& state) {
  auto setup = BenchCorpus(/*topics=*/100, /*vocab=*/10000, /*docs=*/50,
                           /*doc_len=*/200);
  stats::Rng prior(29);
  auto params = models::SampleLdaPrior(prior, setup.hyper);
  stats::Rng rng(37);
  models::LdaDocSampler sampler;
  sampler.Prepare(setup.hyper, params, 50 * 200);
  for (auto _ : state) {
    for (auto& doc : setup.docs) {
      sampler.Resample(rng, &doc, nullptr);
    }
  }
  state.SetItemsProcessed(state.iterations() * 50 * 200);
}
BENCHMARK(BM_LdaDocResample_Kernel)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Alias table: fresh construction vs batch refill; loop vs batch sampling
// ---------------------------------------------------------------------------

void BM_AliasRebuild_Naive(benchmark::State& state) {
  auto weights = stats::ZipfWeights(10000, 1.1);
  for (auto _ : state) {
    stats::AliasTable table(weights);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_AliasRebuild_Naive)->Unit(benchmark::kMicrosecond);

void BM_AliasRebuild_Kernel(benchmark::State& state) {
  auto weights = stats::ZipfWeights(10000, 1.1);
  stats::AliasTable table(weights);
  for (auto _ : state) {
    table.Rebuild(weights);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_AliasRebuild_Kernel)->Unit(benchmark::kMicrosecond);

void BM_AliasSample_Naive(benchmark::State& state) {
  stats::AliasTable table(stats::ZipfWeights(10000, 1.1));
  stats::Rng rng(41);
  std::vector<std::uint32_t> out(1024);
  for (auto _ : state) {
    for (auto& v : out) v = static_cast<std::uint32_t>(table.Sample(rng));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_AliasSample_Naive)->Unit(benchmark::kMicrosecond);

void BM_AliasSample_Kernel(benchmark::State& state) {
  stats::AliasTable table(stats::ZipfWeights(10000, 1.1));
  stats::Rng rng(41);
  std::vector<std::uint32_t> out(1024);
  for (auto _ : state) {
    table.SampleBatch(rng, out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_AliasSample_Kernel)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Batched Gaussian log-density vs scalar NormalLogPdf loop
// ---------------------------------------------------------------------------

void BM_NormalLogPdf_Naive(benchmark::State& state) {
  stats::Rng rng(43);
  std::vector<double> x(4096), out(4096);
  for (auto& v : x) v = 20.0 * (rng.NextDouble() - 0.5);
  for (auto _ : state) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      out[i] = stats::NormalLogPdf(x[i], 1.3, 2.7);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_NormalLogPdf_Naive)->Unit(benchmark::kMicrosecond);

void BM_NormalLogPdf_Kernel(benchmark::State& state) {
  stats::Rng rng(43);
  std::vector<double> x(4096), out(4096);
  for (auto& v : x) v = 20.0 * (rng.NextDouble() - 0.5);
  for (auto _ : state) {
    kernels::BatchedNormalLogPdf(x.data(), x.size(), 1.3, 2.7, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_NormalLogPdf_Kernel)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Blocked dot product vs sequential accumulation
// ---------------------------------------------------------------------------

void BM_Dot_Naive(benchmark::State& state) {
  stats::Rng rng(47);
  std::vector<double> a(4096), b(4096);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextDouble() - 0.5;
    b[i] = rng.NextDouble() - 0.5;
  }
  for (auto _ : state) {
    double s = 0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Dot_Naive)->Unit(benchmark::kNanosecond);

void BM_Dot_Kernel(benchmark::State& state) {
  stats::Rng rng(47);
  std::vector<double> a(4096), b(4096);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextDouble() - 0.5;
    b[i] = rng.NextDouble() - 0.5;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linalg::blocked::Dot(a.data(), b.data(), a.size()));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Dot_Kernel)->Unit(benchmark::kNanosecond);

}  // namespace

int main(int argc, char** argv) {
  return mlbench::bench::RunWithJson(argc, argv, "BENCH_kernels.json");
}
