// Reproduces Figure 6 of the paper: the super-vertex LDA re-implemented on
// Spark in Java. Faster per iteration than the Python version, but the
// boxed model copies cached with every task closure accumulate -- the
// paper's run "failed on 20 machines after 18 iterations as well" and
// never ran at 100.

#include <vector>

#include "core/lda_dataflow.h"
#include "core/report.h"

int main() {
  using namespace mlbench;
  using namespace mlbench::core;
  std::vector<RunResult> measured;
  for (int machines : {5, 20, 100}) {
    LdaExperiment exp;
    exp.config.machines = machines;
    exp.config.iterations = machines == 20 ? 19 : 3;
    exp.granularity = TextGranularity::kSuperVertex;
    exp.language = sim::Language::kJava;
    exp.config.data.actual_per_machine = machines >= 100 ? 8 : 40;
    measured.push_back(RunLdaDataflow(exp, nullptr));
  }
  std::vector<ReportRow> rows;
  rows.push_back(
      {"Spark (Java) LDA", ImplementationLoc({"src/core/lda_dataflow.cc"}),
       {"9:47 (0:53)", "19:36 (1:15)", "Fail"},
       measured,
       "The 20-machine column runs 19 iterations to expose the paper's "
       "failure after 18 iterations; a run of the first five iterations "
       "completes, matching the published average."});
  PrintFigure("Figure 6: LDA Spark Java implementation",
              {"5 machines", "20 machines", "100 machines"}, rows);
  return 0;
}
