// Reproduces Figure 1 of the paper: GMM MCMC on all four platforms.
//   (a) initial implementations, 10-d x {5,20,100} machines + 100-d x 5
//   (b) alternative implementations (Spark Java; GraphLab super vertex)
//   (c) super-vertex implementations on every platform, 5 machines
//
// Data scale matches the paper (10M points/machine at 10-d; 1M at 100-d);
// the actual executed sample per machine is laptop-sized and the cluster
// simulator accounts the full logical work (see DESIGN.md).

#include <string>
#include <vector>

#include "core/gmm_bsp.h"
#include "core/gmm_dataflow.h"
#include "core/gmm_gas.h"
#include "core/gmm_reldb.h"
#include "core/report.h"

namespace mlbench::core {
namespace {

GmmExperiment MakeExp(int machines, int dim, bool super, sim::Language lang) {
  GmmExperiment exp;
  exp.config.machines = machines;
  exp.config.iterations = 3;
  exp.dim = static_cast<std::size_t>(dim);
  exp.k = 10;
  exp.super_vertex = super;
  exp.language = lang;
  if (dim == 10) {
    exp.config.data.logical_per_machine = 10e6;
    exp.config.data.actual_per_machine = machines >= 100 ? 500 : 2000;
  } else {
    exp.config.data.logical_per_machine = 1e6;
    exp.config.data.actual_per_machine = 200;
  }
  return exp;
}

using Runner = RunResult (*)(const GmmExperiment&, models::GmmParams*);

std::vector<RunResult> RunSeries(Runner runner, bool super,
                                 sim::Language lang,
                                 bool graphlab_boot_quirk = false) {
  std::vector<RunResult> out;
  for (int machines : {5, 20, 100}) {
    // Footnote to Fig. 1(b): GraphLab would not boot past 40 machines; the
    // authors' closest successful size to 100 was 96.
    int actual_machines =
        graphlab_boot_quirk && machines == 100 ? 96 : machines;
    out.push_back(runner(MakeExp(actual_machines, 10, super, lang), nullptr));
  }
  out.push_back(runner(MakeExp(5, 100, super, lang), nullptr));
  return out;
}

void Fig1a() {
  std::vector<ReportRow> rows;
  rows.push_back(
      {"SimSQL", ImplementationLoc({"src/core/gmm_reldb.cc"}),
       {"27:55 (13:55)", "28:55 (14:38)", "35:54 (18:58)",
        "1:51:12 (36:08)"},
       RunSeries(&RunGmmRelDb, false, sim::Language::kJava),
       ""});
  rows.push_back({"GraphLab", ImplementationLoc({"src/core/gmm_gas.cc"}),
                  {"Fail", "Fail", "Fail", "Fail"},
                  RunSeries(&RunGmmGas, false, sim::Language::kCpp),
                  ""});
  rows.push_back(
      {"Spark (Python)", ImplementationLoc({"src/core/gmm_dataflow.cc"}),
       {"26:04 (4:10)", "37:34 (2:27)", "38:09 (2:00)", "47:40 (0:52)"},
       RunSeries(&RunGmmDataflow, false, sim::Language::kPython),
       ""});
  rows.push_back(
      {"Giraph", ImplementationLoc({"src/core/gmm_bsp.cc"}),
       {"25:21 (0:18)", "30:26 (0:15)", "Fail", "Fail"},
       RunSeries(&RunGmmBsp, false, sim::Language::kJava),
       ""});
  PrintFigure("Figure 1(a): GMM, initial implementations"
              " [avg time/iteration (init)]",
              {"10d x 5m", "10d x 20m", "10d x 100m", "100d x 5m"}, rows);
}

void Fig1b() {
  std::vector<ReportRow> rows;
  rows.push_back(
      {"Spark (Java)", ImplementationLoc({"src/core/gmm_dataflow.cc"}),
       {"12:30 (2:01)", "12:25 (2:03)", "18:11 (2:26)", "6:25:04 (36:08)"},
       RunSeries(&RunGmmDataflow, false, sim::Language::kJava),
       ""});
  rows.push_back(
      {"GraphLab (Super Vertex)", ImplementationLoc({"src/core/gmm_gas.cc"}),
       {"6:13 (1:13)", "4:36 (2:47)", "6:09 (1:21)*", "33:32 (0:42)"},
       RunSeries(&RunGmmGas, true, sim::Language::kCpp,
                 /*graphlab_boot_quirk=*/true),
       "GraphLab would not boot past 40 machines; the 100-machine column "
       "ran at 96 machines, as in the paper."});
  PrintFigure("Figure 1(b): GMM, alternative implementations",
              {"10d x 5m", "10d x 20m", "10d x 100m", "100d x 5m"}, rows);
}

void Fig1c() {
  auto run4 = [](Runner runner, sim::Language lang, bool quirkless_cpp) {
    (void)quirkless_cpp;
    std::vector<RunResult> out;
    out.push_back(runner(MakeExp(5, 10, false, lang), nullptr));
    out.push_back(runner(MakeExp(5, 10, true, lang), nullptr));
    out.push_back(runner(MakeExp(5, 100, false, lang), nullptr));
    out.push_back(runner(MakeExp(5, 100, true, lang), nullptr));
    return out;
  };
  std::vector<ReportRow> rows;
  rows.push_back({"SimSQL", 0,
                  {"27:55 (13:55)", "6:20 (12:33)", "1:51:12 (36:08)",
                   "7:22 (14:07)"},
                  run4(&RunGmmRelDb, sim::Language::kJava, false),
                  ""});
  rows.push_back({"GraphLab", 0,
                  {"Fail", "6:13 (1:13)", "Fail", "33:32 (0:42)"},
                  run4(&RunGmmGas, sim::Language::kCpp, true),
                  ""});
  rows.push_back({"Spark (Python)", 0,
                  {"26:04 (4:10)", "29:12 (4:01)", "47:40 (0:52)",
                   "47:03 (2:17)"},
                  run4(&RunGmmDataflow, sim::Language::kPython, false),
                  ""});
  rows.push_back({"Giraph", 0,
                  {"25:21 (0:18)", "13:48 (0:03)", "Fail", "6:17:32 (0:03)"},
                  run4(&RunGmmBsp, sim::Language::kJava, false),
                  ""});
  PrintFigure(
      "Figure 1(c): GMM super-vertex implementations (5 machines)",
      {"10d naive", "10d super", "100d naive", "100d super"}, rows);
}

}  // namespace
}  // namespace mlbench::core

int main() {
  mlbench::core::Fig1a();
  mlbench::core::Fig1b();
  mlbench::core::Fig1c();
  return 0;
}
