// Ablation: the paper's Section 8 choice to benchmark the *non-collapsed*
// LDA sampler. We compare three chains on the same planted-topic corpus:
//   1. collapsed, exact sequential sweeps (the "standard" sampler);
//   2. collapsed, approximate parallel sweeps (the concurrent-update
//      shortcut of distributed collapsed samplers the paper distrusts);
//   3. non-collapsed (what the paper benchmarks).
// Printed: token log-likelihood per sweep. The collapsed chain mixes
// fastest; the non-collapsed chain is slower per sweep but exactly
// parallelizable -- the trade-off the paper's footnote describes.

#include <cstdio>
#include <vector>

#include "models/collapsed_lda.h"
#include "stats/rng.h"

int main() {
  using namespace mlbench;
  using namespace mlbench::models;

  LdaHyper hyper{4, 40, 0.5, 0.1};
  stats::Rng gen(42);
  std::vector<LdaDocument> corpus(120);
  for (std::size_t j = 0; j < corpus.size(); ++j) {
    int topic = static_cast<int>(j % 4);
    for (int w = 0; w < 60; ++w) {
      corpus[j].words.push_back(
          static_cast<std::uint32_t>(topic * 10 + gen.NextBounded(10)));
    }
  }

  CollapsedLda exact(hyper, corpus, 7);
  CollapsedLda approx(hyper, corpus, 7);

  stats::Rng nc_rng(7);
  auto nc_docs = corpus;
  for (auto& d : nc_docs) InitLdaDocument(nc_rng, hyper, &d);
  LdaParams nc_params = SampleLdaPrior(nc_rng, hyper);

  std::printf("%-7s %-18s %-22s %s\n", "sweep", "collapsed exact",
              "collapsed approx-par", "non-collapsed");
  for (int sweep = 1; sweep <= 20; ++sweep) {
    exact.Sweep();
    approx.ApproximateParallelSweep();
    LdaCounts counts(hyper.topics, hyper.vocab);
    for (auto& d : nc_docs) {
      ResampleLdaDocument(nc_rng, hyper, nc_params, &d, &counts);
    }
    nc_params = SampleLdaPosterior(nc_rng, hyper, counts);
    double nc_ll = 0;
    for (const auto& d : nc_docs) nc_ll += LdaDocLogLikelihood(d, nc_params);
    if (sweep <= 5 || sweep % 5 == 0) {
      std::printf("%-7d %-18.0f %-22.0f %.0f\n", sweep,
                  exact.TokenLogLikelihood(), approx.TokenLogLikelihood(),
                  nc_ll);
    }
  }
  std::printf(
      "\nThe exact collapsed chain reaches the high-likelihood region\n"
      "first; the approximate-parallel variant tracks it closely on this\n"
      "easy corpus (its bias is the correctness concern the paper cites\n"
      "for excluding it); the non-collapsed chain -- the one the paper\n"
      "benchmarks because it parallelizes exactly -- arrives last.\n");
  return 0;
}
