// Microbenchmarks for the four platform engines (google-benchmark): the
// per-operation host cost of the simulated-platform primitives -- an RDD
// map+reduceByKey round, a relational join+GROUP BY, a BSP superstep with
// combining, and a GAS sweep.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
// mlint: allow(raw-thread) — reads hardware_concurrency for the bench axis
#include <thread>

#include "bench_json.h"

#include "bsp/engine.h"
#include "dataflow/rdd.h"
#include "exec/thread_pool.h"
#include "gas/engine.h"
#include "reldb/database.h"
#include "reldb/rel.h"
#include "sim/cluster_sim.h"

namespace {

using namespace mlbench;

// Host thread counts for the scaling axis: serial vs all hardware threads.
// MLBENCH_BENCH_THREADS overrides the upper point (e.g. to probe
// oversubscription, or pin a count on shared CI runners).
int HwThreads() {
  if (const char* env = std::getenv("MLBENCH_BENCH_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  // mlint: allow(raw-thread) — hardware_concurrency is metadata, not sync
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

// RAII scope for one benchmark's timed region: pins the global pool to
// the requested thread count, arms per-Run dispatch timing, and on exit
// reports the dispatch-overhead counters as per-iteration rates before
// restoring the serial pool. `worker_share` is the fraction of chunks
// executed off the calling thread — 0 means the parallel sections
// degenerated to caller-only execution.
class BenchPool {
 public:
  BenchPool(benchmark::State& state, int threads) : state_(state) {
    exec::ThreadPool::SetGlobalThreads(threads);
    exec::ThreadPool::Global().ResetStats();
    exec::ThreadPool::Global().SetDispatchTiming(true);
  }
  ~BenchPool() {
    exec::ThreadPool::Global().SetDispatchTiming(false);
    const exec::DispatchStats stats = exec::ThreadPool::Global().Stats();
    const double iters =
        std::max<double>(1.0, static_cast<double>(state_.iterations()));
    state_.counters["par_runs"] =
        static_cast<double>(stats.parallel_runs) / iters;
    state_.counters["ser_runs"] =
        static_cast<double>(stats.serial_runs) / iters;
    state_.counters["parks"] = static_cast<double>(stats.parks) / iters;
    state_.counters["dispatch_us"] =
        static_cast<double>(stats.dispatch_ns) / 1e3 / iters;
    const double worker = static_cast<double>(stats.worker_chunks_total());
    const double total = worker + static_cast<double>(stats.caller_chunks);
    state_.counters["worker_share"] = total > 0 ? worker / total : 0;
    exec::ThreadPool::SetGlobalThreads(1);
  }

 private:
  benchmark::State& state_;
};

void BM_RddMapReduceByKey(benchmark::State& state) {
  BenchPool pool(state, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    sim::ClusterSim sim(sim::Ec2M2XLargeCluster(4));
    dataflow::ContextOptions opts;
    opts.scale = 1e4;
    dataflow::Context ctx(&sim, opts);
    auto data = dataflow::Generate<long long>(
        ctx, state.range(0), [](int p, long long i) { return p + i; }, 8);
    auto pairs = data.Map([](const long long& x) {
      return std::pair<int, long long>(static_cast<int>(x % 16), 1);
    });
    auto counts = dataflow::ReduceByKey(
        pairs, [](const long long& a, const long long& b) { return a + b; });
    auto rows = counts.Collect();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_RddMapReduceByKey)
    ->ArgsProduct({{1000, 10000}, {1, HwThreads()}})
    ->ArgNames({"elems", "threads"})
    ->Unit(benchmark::kMicrosecond);

void BM_RelJoinGroupBy(benchmark::State& state) {
  // Tables are built once outside the timed region: the loop measures the
  // query (scan + join probe + group-by), not serial row appends.
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(4));
  reldb::Database db(&sim);
  reldb::Table left(reldb::Schema{"id", "v"}, 1e4);
  reldb::Table right(reldb::Schema{"id", "grp"}, 1e4);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    left.Append(reldb::Tuple{i, static_cast<double>(i)});
    right.Append(reldb::Tuple{i, i % 16});
  }
  db.Put("left", std::move(left));
  db.Put("right", std::move(right));
  BenchPool pool(state, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    db.BeginQuery("bench");
    auto out = reldb::Rel::Scan(db, "left")
                   .HashJoin(reldb::Rel::Scan(db, "right"), {"id"}, {"id"},
                             1e4)
                   .GroupBy({"grp"}, {{reldb::AggOp::kSum, "v", "s"}}, 1.0);
    db.EndQuery();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RelJoinGroupBy)
    ->ArgsProduct({{1000, 10000}, {1, HwThreads()}})
    ->ArgNames({"rows", "threads"})
    ->Unit(benchmark::kMicrosecond);

void BM_BspSuperstep(benchmark::State& state) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(4));
  bsp::BspEngine<int, double> engine(&sim);
  engine.AddVertex(0, 0, 1.0, 64);
  for (long long i = 1; i <= state.range(0); ++i) {
    engine.AddVertex(i, 0, 1.0, 64);
  }
  engine.SetCombiner([](const double& a, const double& b) { return a + b; });
  if (!engine.Boot().ok()) state.SkipWithError("boot failed");
  auto compute = [](bsp::BspEngine<int, double>::Vertex& v,
                    const std::vector<double>&,
                    bsp::BspEngine<int, double>::Context& ctx) {
    if (v.id != 0) ctx.Send(0, 1.0, 8);
  };
  BenchPool pool(state, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto st = engine.RunSuperstep(compute, {});
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BspSuperstep)
    ->ArgsProduct({{1000, 10000}, {1, HwThreads()}})
    ->ArgNames({"vertices", "threads"})
    ->Unit(benchmark::kMicrosecond);

struct GasData {
  double value = 0;
};

class SumProgram : public gas::GasProgram<GasData, double> {
 public:
  double Gather(const gas::Graph<GasData>::Vertex&,
                const gas::Graph<GasData>::Vertex& nbr) override {
    return nbr.data.value;
  }
  double Merge(double a, const double& b) override { return a + b; }
  void Apply(gas::Graph<GasData>::Vertex& v, const double& total) override {
    v.data.value = total * 0.5;
  }
};

void BM_GasSweep(benchmark::State& state) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(4));
  gas::Graph<GasData> graph;
  std::size_t hub = graph.AddVertex(0, GasData{1.0}, 1.0, 64, 64);
  for (long long i = 1; i <= state.range(0); ++i) {
    std::size_t v = graph.AddVertex(i, GasData{1.0}, 1.0, 64, 64);
    graph.AddEdge(hub, v);
  }
  gas::GasEngine<GasData> engine(&sim, &graph);
  if (!engine.Boot().ok()) state.SkipWithError("boot failed");
  SumProgram prog;
  BenchPool pool(state, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto st = engine.RunSweep<double>(prog);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GasSweep)
    ->ArgsProduct({{1000, 10000}, {1, HwThreads()}})
    ->ArgNames({"vertices", "threads"})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return mlbench::bench::RunWithJson(argc, argv, "BENCH_engines.json");
}
