// Microbenchmarks for the four platform engines (google-benchmark): the
// per-operation host cost of the simulated-platform primitives -- an RDD
// map+reduceByKey round, a relational join+GROUP BY, a BSP superstep with
// combining, and a GAS sweep.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "bench_json.h"

#include "bsp/engine.h"
#include "dataflow/rdd.h"
#include "exec/thread_pool.h"
#include "gas/engine.h"
#include "reldb/database.h"
#include "reldb/rel.h"
#include "sim/cluster_sim.h"

namespace {

using namespace mlbench;

// Host thread counts for the scaling axis: serial vs all hardware threads.
// MLBENCH_BENCH_THREADS overrides the upper point (e.g. to probe
// oversubscription, or pin a count on shared CI runners).
int HwThreads() {
  if (const char* env = std::getenv("MLBENCH_BENCH_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

void BM_RddMapReduceByKey(benchmark::State& state) {
  for (auto _ : state) {
    sim::ClusterSim sim(sim::Ec2M2XLargeCluster(4));
    dataflow::ContextOptions opts;
    opts.scale = 1e4;
    dataflow::Context ctx(&sim, opts);
    auto data = dataflow::Generate<long long>(
        ctx, state.range(0), [](int p, long long i) { return p + i; }, 8);
    auto pairs = data.Map([](const long long& x) {
      return std::pair<int, long long>(static_cast<int>(x % 16), 1);
    });
    auto counts = dataflow::ReduceByKey(
        pairs, [](const long long& a, const long long& b) { return a + b; });
    auto rows = counts.Collect();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_RddMapReduceByKey)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_RelJoinGroupBy(benchmark::State& state) {
  for (auto _ : state) {
    sim::ClusterSim sim(sim::Ec2M2XLargeCluster(4));
    reldb::Database db(&sim);
    reldb::Table left(reldb::Schema{"id", "v"}, 1e4);
    reldb::Table right(reldb::Schema{"id", "grp"}, 1e4);
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      left.Append(reldb::Tuple{i, static_cast<double>(i)});
      right.Append(reldb::Tuple{i, i % 16});
    }
    db.Put("left", std::move(left));
    db.Put("right", std::move(right));
    db.BeginQuery("bench");
    auto out = reldb::Rel::Scan(db, "left")
                   .HashJoin(reldb::Rel::Scan(db, "right"), {"id"}, {"id"},
                             1e4)
                   .GroupBy({"grp"}, {{reldb::AggOp::kSum, "v", "s"}}, 1.0);
    db.EndQuery();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RelJoinGroupBy)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_BspSuperstep(benchmark::State& state) {
  exec::ThreadPool::SetGlobalThreads(static_cast<int>(state.range(1)));
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(4));
  bsp::BspEngine<int, double> engine(&sim);
  engine.AddVertex(0, 0, 1.0, 64);
  for (long long i = 1; i <= state.range(0); ++i) {
    engine.AddVertex(i, 0, 1.0, 64);
  }
  engine.SetCombiner([](const double& a, const double& b) { return a + b; });
  if (!engine.Boot().ok()) state.SkipWithError("boot failed");
  auto compute = [](bsp::BspEngine<int, double>::Vertex& v,
                    const std::vector<double>&,
                    bsp::BspEngine<int, double>::Context& ctx) {
    if (v.id != 0) ctx.Send(0, 1.0, 8);
  };
  for (auto _ : state) {
    auto st = engine.RunSuperstep(compute, {});
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  exec::ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_BspSuperstep)
    ->ArgsProduct({{1000, 10000}, {1, HwThreads()}})
    ->ArgNames({"vertices", "threads"})
    ->Unit(benchmark::kMicrosecond);

struct GasData {
  double value = 0;
};

class SumProgram : public gas::GasProgram<GasData, double> {
 public:
  double Gather(const gas::Graph<GasData>::Vertex&,
                const gas::Graph<GasData>::Vertex& nbr) override {
    return nbr.data.value;
  }
  double Merge(double a, const double& b) override { return a + b; }
  void Apply(gas::Graph<GasData>::Vertex& v, const double& total) override {
    v.data.value = total * 0.5;
  }
};

void BM_GasSweep(benchmark::State& state) {
  exec::ThreadPool::SetGlobalThreads(static_cast<int>(state.range(1)));
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(4));
  gas::Graph<GasData> graph;
  std::size_t hub = graph.AddVertex(0, GasData{1.0}, 1.0, 64, 64);
  for (long long i = 1; i <= state.range(0); ++i) {
    std::size_t v = graph.AddVertex(i, GasData{1.0}, 1.0, 64, 64);
    graph.AddEdge(hub, v);
  }
  gas::GasEngine<GasData> engine(&sim, &graph);
  if (!engine.Boot().ok()) state.SkipWithError("boot failed");
  SumProgram prog;
  for (auto _ : state) {
    auto st = engine.RunSweep<double>(prog);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  exec::ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_GasSweep)
    ->ArgsProduct({{1000, 10000}, {1, HwThreads()}})
    ->ArgNames({"vertices", "threads"})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return mlbench::bench::RunWithJson(argc, argv, "BENCH_engines.json");
}
