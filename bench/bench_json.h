#pragma once

// Machine-readable output for the google-benchmark micro suites: a
// collecting reporter that keeps the normal console output and, at exit,
// writes one JSON file with every run's ns/op plus derived speedup rows
// for <Name>_Naive / <Name>_Kernel benchmark pairs.
//
// Usage (replaces BENCHMARK_MAIN):
//   int main(int argc, char** argv) {
//     return mlbench::bench::RunWithJson(argc, argv, "BENCH_kernels.json");
//   }
// The output path can be overridden with MLBENCH_BENCH_JSON.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace mlbench::bench {

struct BenchRecord {
  std::string name;
  double ns_per_op = 0;
  std::int64_t iterations = 0;
};

class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      // With --benchmark_repetitions, skip the derived mean/median/stddev
      // rows: WriteJson averages the per-repetition records itself, and a
      // "_stddev" record would otherwise pair as a bogus speedup row.
      if (run.run_type == Run::RT_Aggregate) continue;
      BenchRecord rec;
      rec.name = run.benchmark_name();
      rec.iterations = run.iterations;
      if (run.iterations > 0) {
        rec.ns_per_op =
            run.real_accumulated_time * 1e9 / static_cast<double>(run.iterations);
      }
      records_.push_back(std::move(rec));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<BenchRecord>& records() const { return records_; }

 private:
  std::vector<BenchRecord> records_;
};

/// Strips the "_Naive" / "_Kernel" token from a benchmark name, keeping
/// any "/arg" suffix, so the two variants of one pair map to one key.
/// Returns empty if the name contains neither token.
inline std::string PairKey(const std::string& name, bool* is_kernel) {
  for (const char* token : {"_Naive", "_Kernel"}) {
    auto at = name.find(token);
    if (at != std::string::npos) {
      *is_kernel = token[1] == 'K';
      return name.substr(0, at) + name.substr(at + std::string(token).size());
    }
  }
  return "";
}

inline void WriteJson(const std::vector<BenchRecord>& records,
                      const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
    return;
  }
  int threads = 1;
  if (const char* env = std::getenv("MLBENCH_BENCH_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) threads = n;
  } else {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  std::fprintf(f, "{\n  \"hw_threads\": %d,\n  \"benchmarks\": [\n", threads);
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                 "\"iterations\": %lld}%s\n",
                 records[i].name.c_str(), records[i].ns_per_op,
                 static_cast<long long>(records[i].iterations),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedups\": [\n");
  // Pair naive/kernel variants by stripped name; emit naive/kernel ratios.
  // Duplicate names (one record per --benchmark_repetitions run) average.
  struct Pair {
    double naive_ns = 0, kernel_ns = 0;
    int naive_n = 0, kernel_n = 0;
  };
  std::map<std::string, Pair> pairs;
  for (const auto& rec : records) {
    bool is_kernel = false;
    std::string key = PairKey(rec.name, &is_kernel);
    if (key.empty()) continue;
    if (is_kernel) {
      pairs[key].kernel_ns += rec.ns_per_op;
      pairs[key].kernel_n += 1;
    } else {
      pairs[key].naive_ns += rec.ns_per_op;
      pairs[key].naive_n += 1;
    }
  }
  for (auto& [key, p] : pairs) {
    if (p.naive_n > 0) p.naive_ns /= p.naive_n;
    if (p.kernel_n > 0) p.kernel_ns /= p.kernel_n;
  }
  bool first = true;
  for (const auto& [key, p] : pairs) {
    if (p.naive_ns <= 0 || p.kernel_ns <= 0) continue;
    std::fprintf(f,
                 "%s    {\"name\": \"%s\", \"naive_ns_per_op\": %.3f, "
                 "\"kernel_ns_per_op\": %.3f, \"speedup\": %.3f}",
                 first ? "" : ",\n", key.c_str(), p.naive_ns, p.kernel_ns,
                 p.naive_ns / p.kernel_ns);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("bench_json: wrote %s\n", path.c_str());
}

/// Drop-in replacement for BENCHMARK_MAIN's body with JSON output.
inline int RunWithJson(int argc, char** argv, const char* default_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* path = std::getenv("MLBENCH_BENCH_JSON");
  WriteJson(reporter.records(), path != nullptr ? path : default_path);
  benchmark::Shutdown();
  return 0;
}

}  // namespace mlbench::bench
