#pragma once

// Machine-readable output for the google-benchmark micro suites: a
// collecting reporter that keeps the normal console output and, at exit,
// writes one JSON file with every run's ns/op plus derived speedup rows
// for <Name>_Naive / <Name>_Kernel benchmark pairs.
//
// Usage (replaces BENCHMARK_MAIN):
//   int main(int argc, char** argv) {
//     return mlbench::bench::RunWithJson(argc, argv, "BENCH_kernels.json");
//   }
// The output path can be overridden with MLBENCH_BENCH_JSON.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
// mlint: allow(raw-thread) — reads hardware_concurrency for JSON metadata
#include <thread>
#include <utility>
#include <vector>

namespace mlbench::bench {

struct BenchRecord {
  std::string name;
  double ns_per_op = 0;
  std::int64_t iterations = 0;
};

class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      // With --benchmark_repetitions, skip the derived mean/median/stddev
      // rows: WriteJson averages the per-repetition records itself, and a
      // "_stddev" record would otherwise pair as a bogus speedup row.
      if (run.run_type == Run::RT_Aggregate) continue;
      BenchRecord rec;
      rec.name = run.benchmark_name();
      rec.iterations = run.iterations;
      if (run.iterations > 0) {
        rec.ns_per_op =
            run.real_accumulated_time * 1e9 / static_cast<double>(run.iterations);
      }
      records_.push_back(std::move(rec));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<BenchRecord>& records() const { return records_; }

 private:
  std::vector<BenchRecord> records_;
};

/// Strips the "_Naive" / "_Kernel" token from a benchmark name, keeping
/// any "/arg" suffix, so the two variants of one pair map to one key.
/// Returns empty if the name contains neither token.
inline std::string PairKey(const std::string& name, bool* is_kernel) {
  for (const char* token : {"_Naive", "_Kernel"}) {
    auto at = name.find(token);
    if (at != std::string::npos) {
      *is_kernel = token[1] == 'K';
      return name.substr(0, at) + name.substr(at + std::string(token).size());
    }
  }
  return "";
}

/// Extracts the "threads:N" axis from a benchmark name and returns the
/// name with that axis removed, so the serial and parallel variants of a
/// scaling benchmark map to one key. Returns empty (and leaves *threads
/// alone) if the name has no threads axis.
inline std::string ThreadsKey(const std::string& name, int* threads) {
  static const std::string token = "threads:";
  auto at = name.find(token);
  if (at == std::string::npos) return "";
  std::size_t begin = at + token.size();
  std::size_t end = begin;
  while (end < name.size() && name[end] >= '0' && name[end] <= '9') ++end;
  if (end == begin) return "";
  *threads = std::atoi(name.substr(begin, end - begin).c_str());
  std::size_t from = at > 0 && name[at - 1] == '/' ? at - 1 : at;
  return name.substr(0, from) + name.substr(end);
}

inline void WriteJson(const std::vector<BenchRecord>& records,
                      const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
    return;
  }
  int threads = 1;
  if (const char* env = std::getenv("MLBENCH_BENCH_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) threads = n;
  } else {
    // mlint: allow(raw-thread) — hardware_concurrency is metadata, not sync
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  // Physical context count of the host that produced the numbers, so
  // downstream gates (tools/check_scaling.py) can tell "parallelism did
  // not help" apart from "this host has one core".
  int host_cores =
      // mlint: allow(raw-thread) — hardware_concurrency is metadata, not sync
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::fprintf(f, "{\n  \"hw_threads\": %d,\n  \"host_cores\": %d,\n",
               threads, host_cores);
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                 "\"iterations\": %lld}%s\n",
                 records[i].name.c_str(), records[i].ns_per_op,
                 static_cast<long long>(records[i].iterations),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedups\": [\n");
  // Pair naive/kernel variants by stripped name; emit naive/kernel ratios.
  // Duplicate names (one record per --benchmark_repetitions run) average.
  struct Pair {
    double naive_ns = 0, kernel_ns = 0;
    int naive_n = 0, kernel_n = 0;
  };
  std::map<std::string, Pair> pairs;
  for (const auto& rec : records) {
    bool is_kernel = false;
    std::string key = PairKey(rec.name, &is_kernel);
    if (key.empty()) continue;
    if (is_kernel) {
      pairs[key].kernel_ns += rec.ns_per_op;
      pairs[key].kernel_n += 1;
    } else {
      pairs[key].naive_ns += rec.ns_per_op;
      pairs[key].naive_n += 1;
    }
  }
  for (auto& [key, p] : pairs) {
    if (p.naive_n > 0) p.naive_ns /= p.naive_n;
    if (p.kernel_n > 0) p.kernel_ns /= p.kernel_n;
  }
  bool first = true;
  for (const auto& [key, p] : pairs) {
    if (p.naive_ns <= 0 || p.kernel_ns <= 0) continue;
    std::fprintf(f,
                 "%s    {\"name\": \"%s\", \"naive_ns_per_op\": %.3f, "
                 "\"kernel_ns_per_op\": %.3f, \"speedup\": %.3f}",
                 first ? "" : ",\n", key.c_str(), p.naive_ns, p.kernel_ns,
                 p.naive_ns / p.kernel_ns);
    first = false;
  }
  // Thread-scaling pairs: every threads:N (N > 1) run over its threads:1
  // twin. Keyed by (name minus the threads axis, N); repetitions average.
  struct ThreadsAccum {
    double ns = 0;
    int n = 0;
  };
  std::map<std::pair<std::string, int>, ThreadsAccum> scaling;
  for (const auto& rec : records) {
    int threads_axis = 0;
    std::string key = ThreadsKey(rec.name, &threads_axis);
    if (key.empty()) continue;
    auto& acc = scaling[{key, threads_axis}];
    acc.ns += rec.ns_per_op;
    acc.n += 1;
  }
  for (const auto& [key, par] : scaling) {
    if (key.second <= 1 || par.n == 0) continue;
    auto serial = scaling.find({key.first, 1});
    if (serial == scaling.end() || serial->second.n == 0) continue;
    double serial_ns = serial->second.ns / serial->second.n;
    double parallel_ns = par.ns / par.n;
    if (serial_ns <= 0 || parallel_ns <= 0) continue;
    std::fprintf(f,
                 "%s    {\"name\": \"%s\", \"threads\": %d, "
                 "\"serial_ns_per_op\": %.3f, \"parallel_ns_per_op\": %.3f, "
                 "\"speedup\": %.3f}",
                 first ? "" : ",\n", key.first.c_str(), key.second, serial_ns,
                 parallel_ns, serial_ns / parallel_ns);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("bench_json: wrote %s\n", path.c_str());
}

/// Drop-in replacement for BENCHMARK_MAIN's body with JSON output.
inline int RunWithJson(int argc, char** argv, const char* default_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* path = std::getenv("MLBENCH_BENCH_JSON");
  WriteJson(reporter.records(), path != nullptr ? path : default_path);
  benchmark::Shutdown();
  return 0;
}

}  // namespace mlbench::bench
