// Reproduces Figure 4 of the paper: non-collapsed LDA (T = 100 topics over
// the HMM corpus).
//   (a) word-based (SimSQL only) and document-based at 5 machines
//   (b) super-vertex implementations at {5, 20, 100} machines
// "Everyone fails except for SimSQL" at the largest configuration.

#include <vector>

#include "core/lda_bsp.h"
#include "core/lda_dataflow.h"
#include "core/lda_gas.h"
#include "core/lda_reldb.h"
#include "core/report.h"

namespace mlbench::core {
namespace {

LdaExperiment MakeExp(int machines, TextGranularity gran,
                      sim::Language lang) {
  LdaExperiment exp;
  exp.config.machines = machines;
  exp.config.iterations = 3;
  exp.granularity = gran;
  exp.language = lang;
  exp.config.data.actual_per_machine = machines >= 100 ? 8 : 40;
  return exp;
}

}  // namespace
}  // namespace mlbench::core

int main() {
  using namespace mlbench;
  using namespace mlbench::core;

  {
    std::vector<ReportRow> rows;
    rows.push_back(
        {"SimSQL", ImplementationLoc({"src/core/lda_reldb.cc"}),
         {"16:34:39 (11:23:22)", "4:52:06 (4:34:27)"},
         {RunLdaRelDb(MakeExp(5, TextGranularity::kWord,
                              sim::Language::kJava), nullptr),
          RunLdaRelDb(MakeExp(5, TextGranularity::kDocument,
                              sim::Language::kJava), nullptr)},
         ""});
    rows.push_back(
        {"Spark (Python)", ImplementationLoc({"src/core/lda_dataflow.cc"}),
         {"NA", "~15:45:00 (~2:30:00)"},
         {RunLdaDataflow(MakeExp(5, TextGranularity::kWord,
                                 sim::Language::kPython), nullptr),
          RunLdaDataflow(MakeExp(5, TextGranularity::kDocument,
                                 sim::Language::kPython), nullptr)},
         "Word-based Spark LDA was not attempted in the paper (NA); our "
         "harness reports it as an unimplemented failure."});
    rows.push_back(
        {"Giraph", ImplementationLoc({"src/core/lda_bsp.cc"}),
         {"NA", "22:22 (5:46)"},
         {RunLdaBsp(MakeExp(5, TextGranularity::kWord,
                            sim::Language::kJava), nullptr),
          RunLdaBsp(MakeExp(5, TextGranularity::kDocument,
                            sim::Language::kJava), nullptr)},
         ""});
    PrintFigure(
        "Figure 4(a): LDA word-based and document-based (5 machines)",
        {"word-based", "document-based"}, rows);
  }

  {
    auto series = [](auto runner, sim::Language lang, bool quirk = false) {
      std::vector<RunResult> out;
      for (int machines : {5, 20, 100}) {
        int actual = quirk && machines == 100 ? 96 : machines;
        out.push_back(runner(
            MakeExp(actual, TextGranularity::kSuperVertex, lang), nullptr));
      }
      return out;
    };
    std::vector<ReportRow> rows;
    rows.push_back({"Giraph", 0,
                    {"18:49 (2:35)", "20:02 (2:46)", "Fail"},
                    series(&RunLdaBsp, sim::Language::kJava),
                    ""});
    rows.push_back({"GraphLab", ImplementationLoc({"src/core/lda_gas.cc"}),
                    {"39:27 (32:14)", "Fail", "Fail"},
                    series(&RunLdaGas, sim::Language::kCpp, true),
                    ""});
    rows.push_back({"Spark (Python)", 0,
                    {"~3:56:00 (~2:15:00)", "~3:57:00 (~2:15:00)", "Fail"},
                    series(&RunLdaDataflow, sim::Language::kPython),
                    ""});
    rows.push_back({"SimSQL", 0,
                    {"1:00:17 (3:09)", "1:06:59 (3:34)", "1:13:58 (4:28)"},
                    series(&RunLdaRelDb, sim::Language::kJava),
                    ""});
    PrintFigure("Figure 4(b): LDA super-vertex implementations",
                {"5 machines", "20 machines", "100 machines"}, rows);
  }
  return 0;
}
