// Microbenchmarks for batched vertex programs and columnar VG functions
// (DESIGN.md §14): whole-driver runs with the per-edge / per-tuple scalar
// dispatch (_Naive) against the chunk-batched paths (_Kernel, the default).
// Both sides are bit-identical in results, simulated charges and RNG
// streams (see tests/vertex_batch_test.cc); these pairs measure host wall
// time only. Writes BENCH_vertex.json (GAS gather pairs) and BENCH_vg.json
// (VG function pairs) via bench_json.h.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_json.h"
#include "core/gmm_gas.h"
#include "core/gmm_reldb.h"
#include "core/hmm_gas.h"
#include "core/hmm_reldb.h"
#include "core/lasso_gas.h"
#include "core/lasso_reldb.h"
#include "core/lda_gas.h"
#include "core/lda_reldb.h"
#include "gas/engine.h"
#include "reldb/database.h"

namespace {

using namespace mlbench;

// ---- GAS gather pairs ------------------------------------------------------

core::GmmExperiment GasGmmConfig() {
  core::GmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 6;
  // Low-dim, many-cluster mix: each data vertex pulls k (mu, sigma) model
  // rows per sweep, so per-edge dispatch and double-copied model rows are
  // the dominant scalar cost rather than the O(dim^3) sampler build. The
  // 450-edge hubs stay under the engine's parallel threshold: one serial
  // whole-span batch per hub, with run-to-run timing jitter far below the
  // ParallelFor path's (the parity tests cover the chunked path).
  exp.dim = 2;
  exp.k = 8;
  exp.config.data.logical_per_machine = 1e6;
  exp.config.data.actual_per_machine = 150;
  exp.config.seed = 77;
  return exp;
}

void GasGmmRun(benchmark::State& state, bool batched) {
  gas::SetDefaultBatchedGather(batched);
  core::GmmExperiment exp = GasGmmConfig();
  for (auto _ : state) {
    core::RunResult r = core::RunGmmGas(exp, nullptr);
    benchmark::DoNotOptimize(r.init_seconds);
  }
  gas::SetDefaultBatchedGather(true);
}

void BM_GasGmm_Naive(benchmark::State& state) { GasGmmRun(state, false); }
void BM_GasGmm_Kernel(benchmark::State& state) { GasGmmRun(state, true); }
BENCHMARK(BM_GasGmm_Naive)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GasGmm_Kernel)->Unit(benchmark::kMillisecond);

core::HmmExperiment GasHmmConfig() {
  core::HmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.states = 10;
  exp.vocab = 500;
  exp.mean_doc_len = 40;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 30;
  exp.config.seed = 19;
  return exp;
}

void GasHmmRun(benchmark::State& state, bool batched) {
  gas::SetDefaultBatchedGather(batched);
  core::HmmExperiment exp = GasHmmConfig();
  for (auto _ : state) {
    core::RunResult r = core::RunHmmGas(exp, nullptr);
    benchmark::DoNotOptimize(r.init_seconds);
  }
  gas::SetDefaultBatchedGather(true);
}

void BM_GasHmm_Naive(benchmark::State& state) { GasHmmRun(state, false); }
void BM_GasHmm_Kernel(benchmark::State& state) { GasHmmRun(state, true); }
BENCHMARK(BM_GasHmm_Naive)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GasHmm_Kernel)->Unit(benchmark::kMillisecond);

core::LdaExperiment GasLdaConfig() {
  core::LdaExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.topics = 8;
  exp.vocab = 500;
  exp.mean_doc_len = 40;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 30;
  exp.config.seed = 31;
  return exp;
}

void GasLdaRun(benchmark::State& state, bool batched) {
  gas::SetDefaultBatchedGather(batched);
  core::LdaExperiment exp = GasLdaConfig();
  for (auto _ : state) {
    core::RunResult r = core::RunLdaGas(exp, nullptr);
    benchmark::DoNotOptimize(r.init_seconds);
  }
  gas::SetDefaultBatchedGather(true);
}

void BM_GasLda_Naive(benchmark::State& state) { GasLdaRun(state, false); }
void BM_GasLda_Kernel(benchmark::State& state) { GasLdaRun(state, true); }
BENCHMARK(BM_GasLda_Naive)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GasLda_Kernel)->Unit(benchmark::kMillisecond);

core::LassoExperiment GasLassoConfig() {
  core::LassoExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.p = 16;
  exp.config.data.actual_per_machine = 400;
  // 600 data supers + 16 model vertices: the center runs chunked gathers.
  exp.supers_per_machine = 200;
  exp.config.seed = 7;
  return exp;
}

void GasLassoRun(benchmark::State& state, bool batched) {
  gas::SetDefaultBatchedGather(batched);
  core::LassoExperiment exp = GasLassoConfig();
  for (auto _ : state) {
    core::RunResult r = core::RunLassoGas(exp, nullptr);
    benchmark::DoNotOptimize(r.init_seconds);
  }
  gas::SetDefaultBatchedGather(true);
}

void BM_GasLasso_Naive(benchmark::State& state) { GasLassoRun(state, false); }
void BM_GasLasso_Kernel(benchmark::State& state) { GasLassoRun(state, true); }
BENCHMARK(BM_GasLasso_Naive)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GasLasso_Kernel)->Unit(benchmark::kMillisecond);

// ---- Columnar VG pairs -----------------------------------------------------

core::GmmExperiment VgGmmConfig() {
  core::GmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 5;
  exp.dim = 2;
  exp.k = 8;
  // Super-vertex (chunked-record) plan: membership resampling and the
  // sufficient-stats emission both run inside SuperVertexVg, so the
  // iteration is VG-bound instead of join/aggregate-bound. Many small
  // groups put the per-tuple dispatch overhead in the numerator.
  exp.super_vertex = true;
  exp.supers_per_machine = 400;
  exp.config.data.logical_per_machine = 1e6;
  exp.config.data.actual_per_machine = 400;
  exp.config.seed = 77;
  return exp;
}

void VgGmmRun(benchmark::State& state, bool batched) {
  reldb::Database::SetDefaultVgBatch(batched);
  core::GmmExperiment exp = VgGmmConfig();
  for (auto _ : state) {
    core::RunResult r = core::RunGmmRelDb(exp, nullptr);
    benchmark::DoNotOptimize(r.init_seconds);
  }
  reldb::Database::SetDefaultVgBatch(true);
}

void BM_VgGmm_Naive(benchmark::State& state) { VgGmmRun(state, false); }
void BM_VgGmm_Kernel(benchmark::State& state) { VgGmmRun(state, true); }
BENCHMARK(BM_VgGmm_Naive)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VgGmm_Kernel)->Unit(benchmark::kMillisecond);

core::HmmExperiment VgHmmConfig() {
  core::HmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.states = 6;
  exp.vocab = 300;
  exp.mean_doc_len = 40;
  exp.granularity = core::TextGranularity::kDocument;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 60;
  exp.config.seed = 19;
  return exp;
}

void VgHmmRun(benchmark::State& state, bool batched) {
  reldb::Database::SetDefaultVgBatch(batched);
  core::HmmExperiment exp = VgHmmConfig();
  for (auto _ : state) {
    core::RunResult r = core::RunHmmRelDb(exp, nullptr);
    benchmark::DoNotOptimize(r.init_seconds);
  }
  reldb::Database::SetDefaultVgBatch(true);
}

void BM_VgHmm_Naive(benchmark::State& state) { VgHmmRun(state, false); }
void BM_VgHmm_Kernel(benchmark::State& state) { VgHmmRun(state, true); }
BENCHMARK(BM_VgHmm_Naive)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VgHmm_Kernel)->Unit(benchmark::kMillisecond);

core::LdaExperiment VgLdaConfig() {
  core::LdaExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.topics = 8;
  exp.vocab = 300;
  exp.mean_doc_len = 40;
  exp.granularity = core::TextGranularity::kDocument;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 60;
  exp.config.seed = 31;
  return exp;
}

void VgLdaRun(benchmark::State& state, bool batched) {
  reldb::Database::SetDefaultVgBatch(batched);
  core::LdaExperiment exp = VgLdaConfig();
  for (auto _ : state) {
    core::RunResult r = core::RunLdaRelDb(exp, nullptr);
    benchmark::DoNotOptimize(r.init_seconds);
  }
  reldb::Database::SetDefaultVgBatch(true);
}

void BM_VgLda_Naive(benchmark::State& state) { VgLdaRun(state, false); }
void BM_VgLda_Kernel(benchmark::State& state) { VgLdaRun(state, true); }
BENCHMARK(BM_VgLda_Naive)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VgLda_Kernel)->Unit(benchmark::kMillisecond);

void VgLassoRun(benchmark::State& state, bool batched) {
  reldb::Database::SetDefaultVgBatch(batched);
  core::LassoExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.p = 32;
  exp.config.data.actual_per_machine = 200;
  exp.config.seed = 7;
  for (auto _ : state) {
    core::RunResult r = core::RunLassoRelDb(exp, nullptr);
    benchmark::DoNotOptimize(r.init_seconds);
  }
  reldb::Database::SetDefaultVgBatch(true);
}

void BM_VgLasso_Naive(benchmark::State& state) { VgLassoRun(state, false); }
void BM_VgLasso_Kernel(benchmark::State& state) { VgLassoRun(state, true); }
BENCHMARK(BM_VgLasso_Naive)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VgLasso_Kernel)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  mlbench::bench::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  // Two JSON files, split by pair family: GAS gathers vs VG functions.
  std::vector<mlbench::bench::BenchRecord> gas_recs, vg_recs;
  for (const auto& rec : reporter.records()) {
    if (rec.name.rfind("BM_Vg", 0) == 0) {
      vg_recs.push_back(rec);
    } else {
      gas_recs.push_back(rec);
    }
  }
  mlbench::bench::WriteJson(gas_recs, "BENCH_vertex.json");
  mlbench::bench::WriteJson(vg_recs, "BENCH_vg.json");
  benchmark::Shutdown();
  return 0;
}
