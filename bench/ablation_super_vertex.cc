// Ablation: the super-vertex group size (DESIGN.md calls this the
// benchmark's central optimization). Sweeps the number of super vertices
// per machine for the GraphLab GMM at paper scale and reports simulated
// per-iteration time and peak per-machine memory: too few supers wastes
// parallelism, too many re-creates the naive code's per-vertex model
// copies and dies the way Figure 1(a) reports.

#include <cstdio>
#include <vector>

#include "common/str_format.h"
#include "core/gmm_gas.h"

int main() {
  using namespace mlbench;
  using namespace mlbench::core;
  std::printf(
      "GraphLab GMM, 10-d, 5 machines, 10M points/machine, varying the\n"
      "number of super vertices per machine (the paper used 80):\n\n");
  std::printf("%-22s %-16s %-14s %s\n", "supers/machine", "per iteration",
              "peak memory", "outcome");
  for (double supers : {2.0, 8.0, 80.0, 800.0, 8000.0, 200000.0, 1e7}) {
    GmmExperiment exp;
    exp.config.machines = 5;
    exp.config.iterations = 2;
    exp.super_vertex = true;
    exp.supers_per_machine = supers;
    exp.config.data.logical_per_machine = 10e6;
    exp.config.data.actual_per_machine = 2000;
    RunResult r = RunGmmGas(exp, nullptr);
    if (r.ok()) {
      std::printf("%-22s %-16s %-14s ok\n", FormatCount(
                      static_cast<std::uint64_t>(supers)).c_str(),
                  FormatDuration(r.avg_iteration_seconds()).c_str(),
                  FormatBytes(r.peak_machine_bytes).c_str());
    } else {
      std::printf("%-22s %-16s %-14s Fail (%s)\n",
                  FormatCount(static_cast<std::uint64_t>(supers)).c_str(),
                  "-", "-", StatusCodeName(r.status.code()));
    }
  }
  std::printf(
      "\n(1e7 supers/machine is one point per logical vertex -- the naive\n"
      "implementation, which exhausts memory exactly as in Figure 1(a).)\n");
  return 0;
}
