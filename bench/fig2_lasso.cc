// Reproduces Figure 2 of the paper: the Bayesian Lasso on all four
// platforms (p = 1000 regressors, 10^5 points/machine, {5, 20, 100}
// machines). Giraph appears twice: the naive code fails at every size;
// the super-vertex code runs.

#include <vector>

#include "core/lasso_bsp.h"
#include "core/lasso_dataflow.h"
#include "core/lasso_gas.h"
#include "core/lasso_reldb.h"
#include "core/report.h"

namespace mlbench::core {
namespace {

LassoExperiment MakeExp(int machines, bool super, sim::Language lang) {
  LassoExperiment exp;
  exp.config.machines = machines;
  exp.config.iterations = 3;
  exp.super_vertex = super;
  exp.language = lang;
  exp.config.data.actual_per_machine = machines >= 100 ? 60 : 300;
  return exp;
}

template <typename Runner>
std::vector<RunResult> Series(Runner runner, bool super, sim::Language lang,
                              bool graphlab_boot_quirk = false) {
  std::vector<RunResult> out;
  for (int machines : {5, 20, 100}) {
    int actual = graphlab_boot_quirk && machines == 100 ? 96 : machines;
    out.push_back(runner(MakeExp(actual, super, lang), nullptr));
  }
  return out;
}

}  // namespace
}  // namespace mlbench::core

int main() {
  using namespace mlbench;
  using namespace mlbench::core;
  std::vector<ReportRow> rows;
  rows.push_back({"SimSQL", ImplementationLoc({"src/core/lasso_reldb.cc"}),
                  {"7:09 (2:40:06)", "8:04 (2:45:28)", "12:24 (2:54:45)"},
                  Series(&RunLassoRelDb, false, sim::Language::kJava),
                  ""});
  rows.push_back(
      {"GraphLab (Super Vertex)", ImplementationLoc({"src/core/lasso_gas.cc"}),
       {"0:36 (0:37)", "0:26 (0:35)", "0:31 (0:50)"},
       Series(&RunLassoGas, true, sim::Language::kCpp,
              /*graphlab_boot_quirk=*/true),
       "100-machine column ran at 96 machines (GraphLab boot limit)."});
  rows.push_back(
      {"Spark (Python)", ImplementationLoc({"src/core/lasso_dataflow.cc"}),
       {"0:55 (1:26:59)", "0:59 (1:33:13)", "1:12 (2:06:30)"},
       Series(&RunLassoDataflow, false, sim::Language::kPython),
       ""});
  rows.push_back({"Giraph", ImplementationLoc({"src/core/lasso_bsp.cc"}),
                  {"Fail", "Fail", "Fail"},
                  Series(&RunLassoBsp, false, sim::Language::kJava),
                  ""});
  rows.push_back({"Giraph (Super Vertex)", 0,
                  {"0:58 (1:14)", "1:03 (1:14)", "2:08 (6:31)"},
                  Series(&RunLassoBsp, true, sim::Language::kJava),
                  ""});
  PrintFigure("Figure 2: Bayesian Lasso [avg time/iteration (init)]",
              {"5 machines", "20 machines", "100 machines"}, rows);
  return 0;
}
