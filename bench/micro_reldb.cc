// Microbenchmarks for the columnar relational engine: each Rel operator on
// the row engine (_Naive) against the same operator on ColumnBatch
// (_Kernel), plus whole-driver runs of the five reldb models under both
// engines. The engines are bit-identical in results and simulated charges
// (see tests/reldb_columnar_test.cc); these pairs measure the host-side
// wall time only. Writes BENCH_reldb.json with per-pair speedups via
// bench_json.h.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>

#include "bench_json.h"
#include "core/gmm_reldb.h"
#include "core/hmm_reldb.h"
#include "core/lasso_reldb.h"
#include "core/lda_reldb.h"
#include "reldb/database.h"
#include "reldb/rel.h"
#include "sim/cluster_sim.h"
#include "sim/machine.h"

namespace {

using namespace mlbench;
using reldb::AggOp;
using reldb::AsDouble;
using reldb::ColExpr;
using reldb::Database;
using reldb::Rel;
using reldb::Schema;
using reldb::Table;
using reldb::Tuple;

/// Forces the engine for the duration of one benchmark body.
class EngineGuard {
 public:
  explicit EngineGuard(bool columnar)
      : saved_(Database::DefaultColumnar()) {
    Database::SetDefaultColumnar(columnar);
  }
  ~EngineGuard() { Database::SetDefaultColumnar(saved_); }

 private:
  bool saved_;
};

// ---------------------------------------------------------------------------
// Operator pairs: n-row data table, 1/8th-n-row dimension table
// ---------------------------------------------------------------------------

struct OpBench {
  sim::ClusterSim sim;
  Database db;

  OpBench(bool columnar, std::int64_t n)
      : sim(sim::Ec2M2XLargeCluster(5)), db(&sim, sim::RelDbCosts{}, 42) {
    db.set_columnar(columnar);
    Table data(Schema{"data_id", "dim_id", "data_val"}, 1e6);
    data.Reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      data.Append(Tuple{i / 8, i % 8, 0.25 * static_cast<double>(i % 997)});
    }
    db.Put("data", std::move(data));
    Table members(Schema{"data_id", "clus_id"}, 1e6);
    members.Reserve(static_cast<std::size_t>(n / 8));
    for (std::int64_t i = 0; i < n / 8; ++i) {
      members.Append(Tuple{i, i % 10});
    }
    db.Put("members", std::move(members));
    // Convert outside the timed region: stored batches are built once and
    // cached for the run, as in the drivers.
    if (columnar) {
      db.GetColumnar("data");
      db.GetColumnar("members");
    }
  }
};

template <typename PlanFn>
void OperatorBench(benchmark::State& state, bool columnar, PlanFn plan) {
  OpBench b(columnar, state.range(0));
  for (auto _ : state) {
    b.db.BeginQuery("bench");
    benchmark::DoNotOptimize(plan(b.db).table().actual_rows());
    b.db.EndQuery();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_RelFilterIntIn_Naive(benchmark::State& state) {
  OperatorBench(state, false, [](Database& db) {
    return Rel::Scan(db, "data").FilterIntIn("dim_id", {0, 3});
  });
}
BENCHMARK(BM_RelFilterIntIn_Naive)->Arg(1 << 16);

void BM_RelFilterIntIn_Kernel(benchmark::State& state) {
  OperatorBench(state, true, [](Database& db) {
    return Rel::Scan(db, "data").FilterIntIn("dim_id", {0, 3});
  });
}
BENCHMARK(BM_RelFilterIntIn_Kernel)->Arg(1 << 16);

void BM_RelProjectExprs_Naive(benchmark::State& state) {
  OperatorBench(state, false, [](Database& db) {
    return Rel::Scan(db, "data").Project(
        Schema{"data_id", "tag", "sq"},
        {ColExpr::Col(0), ColExpr::Const(std::int64_t{1}),
         ColExpr::Fn([](const Tuple& t) {
           return AsDouble(t[2]) * AsDouble(t[2]);
         })});
  });
}
BENCHMARK(BM_RelProjectExprs_Naive)->Arg(1 << 16);

void BM_RelProjectExprs_Kernel(benchmark::State& state) {
  OperatorBench(state, true, [](Database& db) {
    return Rel::Scan(db, "data").Project(
        Schema{"data_id", "tag", "sq"},
        {ColExpr::Col(0), ColExpr::Const(std::int64_t{1}),
         ColExpr::Fn([](const Tuple& t) {
           return AsDouble(t[2]) * AsDouble(t[2]);
         })});
  });
}
BENCHMARK(BM_RelProjectExprs_Kernel)->Arg(1 << 16);

void BM_RelHashJoin_Naive(benchmark::State& state) {
  OperatorBench(state, false, [](Database& db) {
    return Rel::Scan(db, "data").HashJoin(Rel::Scan(db, "members"),
                                          {"data_id"}, {"data_id"}, 1e6);
  });
}
BENCHMARK(BM_RelHashJoin_Naive)->Arg(1 << 16);

void BM_RelHashJoin_Kernel(benchmark::State& state) {
  OperatorBench(state, true, [](Database& db) {
    return Rel::Scan(db, "data").HashJoin(Rel::Scan(db, "members"),
                                          {"data_id"}, {"data_id"}, 1e6);
  });
}
BENCHMARK(BM_RelHashJoin_Kernel)->Arg(1 << 16);

void BM_RelGroupBy_Naive(benchmark::State& state) {
  OperatorBench(state, false, [](Database& db) {
    return Rel::Scan(db, "data").GroupBy(
        {"data_id"}, {{AggOp::kSum, "data_val", "s"}, {AggOp::kCount, "", "n"}},
        1.0);
  });
}
BENCHMARK(BM_RelGroupBy_Naive)->Arg(1 << 16);

void BM_RelGroupBy_Kernel(benchmark::State& state) {
  OperatorBench(state, true, [](Database& db) {
    return Rel::Scan(db, "data").GroupBy(
        {"data_id"}, {{AggOp::kSum, "data_val", "s"}, {AggOp::kCount, "", "n"}},
        1.0);
  });
}
BENCHMARK(BM_RelGroupBy_Kernel)->Arg(1 << 16);

// ---------------------------------------------------------------------------
// Whole-driver pairs: the five reldb models, relational-work-heavy configs
// ---------------------------------------------------------------------------

core::GmmExperiment BenchGmm(bool imputation) {
  core::GmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.dim = 8;
  exp.k = 4;
  exp.config.data.logical_per_machine = 1e6;
  exp.config.data.actual_per_machine = 500;
  exp.config.seed = 77;
  exp.imputation = imputation;
  return exp;
}

template <typename RunFn>
void DriverBench(benchmark::State& state, bool columnar, int iterations,
                 RunFn run) {
  EngineGuard guard(columnar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run());
  }
  state.SetItemsProcessed(state.iterations() * iterations);
}

void BM_GmmRelDb_Naive(benchmark::State& state) {
  auto exp = BenchGmm(false);
  DriverBench(state, false, exp.config.iterations,
              [&] { return core::RunGmmRelDb(exp).ok(); });
}
BENCHMARK(BM_GmmRelDb_Naive)->Unit(benchmark::kMillisecond);

void BM_GmmRelDb_Kernel(benchmark::State& state) {
  auto exp = BenchGmm(false);
  DriverBench(state, true, exp.config.iterations,
              [&] { return core::RunGmmRelDb(exp).ok(); });
}
BENCHMARK(BM_GmmRelDb_Kernel)->Unit(benchmark::kMillisecond);

void BM_ImputationRelDb_Naive(benchmark::State& state) {
  auto exp = BenchGmm(true);
  DriverBench(state, false, exp.config.iterations,
              [&] { return core::RunGmmRelDb(exp).ok(); });
}
BENCHMARK(BM_ImputationRelDb_Naive)->Unit(benchmark::kMillisecond);

void BM_ImputationRelDb_Kernel(benchmark::State& state) {
  auto exp = BenchGmm(true);
  DriverBench(state, true, exp.config.iterations,
              [&] { return core::RunGmmRelDb(exp).ok(); });
}
BENCHMARK(BM_ImputationRelDb_Kernel)->Unit(benchmark::kMillisecond);

core::HmmExperiment BenchHmm() {
  core::HmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.states = 4;
  exp.vocab = 300;
  exp.mean_doc_len = 40;
  exp.granularity = core::TextGranularity::kWord;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 50;
  exp.config.seed = 19;
  return exp;
}

void BM_HmmRelDb_Naive(benchmark::State& state) {
  auto exp = BenchHmm();
  DriverBench(state, false, exp.config.iterations,
              [&] { return core::RunHmmRelDb(exp).ok(); });
}
BENCHMARK(BM_HmmRelDb_Naive)->Unit(benchmark::kMillisecond);

void BM_HmmRelDb_Kernel(benchmark::State& state) {
  auto exp = BenchHmm();
  DriverBench(state, true, exp.config.iterations,
              [&] { return core::RunHmmRelDb(exp).ok(); });
}
BENCHMARK(BM_HmmRelDb_Kernel)->Unit(benchmark::kMillisecond);

core::LdaExperiment BenchLda() {
  core::LdaExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.topics = 4;
  exp.vocab = 300;
  exp.mean_doc_len = 40;
  exp.granularity = core::TextGranularity::kWord;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 50;
  exp.config.seed = 31;
  return exp;
}

void BM_LdaRelDb_Naive(benchmark::State& state) {
  auto exp = BenchLda();
  DriverBench(state, false, exp.config.iterations,
              [&] { return core::RunLdaRelDb(exp).ok(); });
}
BENCHMARK(BM_LdaRelDb_Naive)->Unit(benchmark::kMillisecond);

void BM_LdaRelDb_Kernel(benchmark::State& state) {
  auto exp = BenchLda();
  DriverBench(state, true, exp.config.iterations,
              [&] { return core::RunLdaRelDb(exp).ok(); });
}
BENCHMARK(BM_LdaRelDb_Kernel)->Unit(benchmark::kMillisecond);

core::LassoExperiment BenchLasso() {
  core::LassoExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 8;
  exp.p = 32;
  exp.config.data.actual_per_machine = 400;
  exp.config.seed = 7;
  return exp;
}

void BM_LassoRelDb_Naive(benchmark::State& state) {
  auto exp = BenchLasso();
  DriverBench(state, false, exp.config.iterations,
              [&] { return core::RunLassoRelDb(exp).ok(); });
}
BENCHMARK(BM_LassoRelDb_Naive)->Unit(benchmark::kMillisecond);

void BM_LassoRelDb_Kernel(benchmark::State& state) {
  auto exp = BenchLasso();
  DriverBench(state, true, exp.config.iterations,
              [&] { return core::RunLassoRelDb(exp).ok(); });
}
BENCHMARK(BM_LassoRelDb_Kernel)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return mlbench::bench::RunWithJson(argc, argv, "BENCH_reldb.json");
}
