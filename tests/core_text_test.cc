#include <gtest/gtest.h>

#include <cmath>

#include "core/hmm_bsp.h"
#include "core/hmm_dataflow.h"
#include "core/hmm_gas.h"
#include "core/hmm_reldb.h"
#include "core/lda_bsp.h"
#include "core/lda_dataflow.h"
#include "core/lda_gas.h"
#include "core/lda_reldb.h"
#include "core/workloads.h"

namespace mlbench::core {
namespace {

HmmExperiment SmallHmm(TextGranularity gran) {
  HmmExperiment exp;
  exp.config.machines = 5;
  exp.config.iterations = 6;
  exp.states = 4;
  exp.vocab = 200;
  exp.mean_doc_len = 60;
  exp.granularity = gran;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 30;
  exp.supers_per_machine = 10;
  return exp;
}

LdaExperiment SmallLda(TextGranularity gran) {
  LdaExperiment exp;
  exp.config.machines = 5;
  exp.config.iterations = 6;
  exp.topics = 5;
  exp.vocab = 200;
  exp.mean_doc_len = 60;
  exp.granularity = gran;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 30;
  exp.supers_per_machine = 10;
  return exp;
}

void ExpectDistributionRows(const models::HmmParams& p) {
  EXPECT_NEAR(p.delta0.Sum(), 1.0, 1e-6);
  for (const auto& row : p.delta) EXPECT_NEAR(row.Sum(), 1.0, 1e-6);
  for (const auto& row : p.psi) EXPECT_NEAR(row.Sum(), 1.0, 1e-6);
}

TEST(HmmPlatforms, DocumentBasedRunsEverywhere) {
  models::HmmParams m;
  ASSERT_TRUE(
      RunHmmDataflow(SmallHmm(TextGranularity::kDocument), &m).ok());
  ExpectDistributionRows(m);
  ASSERT_TRUE(RunHmmRelDb(SmallHmm(TextGranularity::kDocument), &m).ok());
  ExpectDistributionRows(m);
  ASSERT_TRUE(RunHmmBsp(SmallHmm(TextGranularity::kDocument), &m).ok());
  ExpectDistributionRows(m);
}

TEST(HmmPlatforms, SuperVertexRunsEverywhere) {
  models::HmmParams m;
  ASSERT_TRUE(
      RunHmmDataflow(SmallHmm(TextGranularity::kSuperVertex), &m).ok());
  ASSERT_TRUE(RunHmmRelDb(SmallHmm(TextGranularity::kSuperVertex), &m).ok());
  ASSERT_TRUE(RunHmmGas(SmallHmm(TextGranularity::kSuperVertex), &m).ok());
  ExpectDistributionRows(m);
  ASSERT_TRUE(RunHmmBsp(SmallHmm(TextGranularity::kSuperVertex), &m).ok());
  ExpectDistributionRows(m);
}

TEST(HmmPlatforms, WordBasedOnlySimSqlSurvivesAtPaperScale) {
  // Paper scale: 2.5M docs/machine. SimSQL is slow but runs; Spark's
  // self-join and Giraph's word vertices die.
  HmmExperiment paper;
  paper.config.machines = 5;
  paper.config.iterations = 1;
  paper.granularity = TextGranularity::kWord;
  paper.config.data.actual_per_machine = 20;
  EXPECT_TRUE(RunHmmRelDb(paper, nullptr).ok());
  RunResult spark = RunHmmDataflow(paper, nullptr);
  ASSERT_FALSE(spark.ok());
  EXPECT_TRUE(spark.status.IsOutOfMemory());
  RunResult giraph = RunHmmBsp(paper, nullptr);
  ASSERT_FALSE(giraph.ok());
  EXPECT_TRUE(giraph.status.IsOutOfMemory());
}

TEST(HmmShape, GiraphSuperVertexIsFastestAtPaperScale) {
  // Figure 3(b)'s headline: Giraph ~2.5 min/iteration, SimSQL ~2 hours,
  // Spark ~4 hours.
  HmmExperiment paper;
  paper.config.machines = 5;
  paper.config.iterations = 1;
  paper.granularity = TextGranularity::kSuperVertex;
  paper.config.data.actual_per_machine = 30;
  RunResult giraph = RunHmmBsp(paper, nullptr);
  RunResult simsql = RunHmmRelDb(paper, nullptr);
  RunResult spark = RunHmmDataflow(paper, nullptr);
  ASSERT_TRUE(giraph.ok());
  ASSERT_TRUE(simsql.ok());
  ASSERT_TRUE(spark.ok());
  EXPECT_LT(giraph.avg_iteration_seconds() * 5,
            simsql.avg_iteration_seconds());
  EXPECT_LT(simsql.avg_iteration_seconds(),
            spark.avg_iteration_seconds());
}

TEST(LdaPlatforms, DocumentAndSuperVertexRun) {
  models::LdaParams m;
  ASSERT_TRUE(
      RunLdaDataflow(SmallLda(TextGranularity::kDocument), &m).ok());
  for (const auto& row : m.phi) EXPECT_NEAR(row.Sum(), 1.0, 1e-6);
  ASSERT_TRUE(RunLdaRelDb(SmallLda(TextGranularity::kDocument), &m).ok());
  ASSERT_TRUE(RunLdaBsp(SmallLda(TextGranularity::kDocument), &m).ok());
  ASSERT_TRUE(RunLdaGas(SmallLda(TextGranularity::kSuperVertex), &m).ok());
  for (const auto& row : m.phi) EXPECT_NEAR(row.Sum(), 1.0, 1e-6);
}

TEST(LdaPlatforms, WordBasedIsSimSqlOnly) {
  LdaExperiment exp = SmallLda(TextGranularity::kWord);
  EXPECT_TRUE(RunLdaRelDb(exp, nullptr).ok());
  EXPECT_EQ(RunLdaDataflow(exp, nullptr).status.code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(RunLdaBsp(exp, nullptr).status.code(),
            StatusCode::kUnimplemented);
}

TEST(LdaShape, EveryoneFailsExceptSimSqlAt100Machines) {
  // Figure 4(b)'s headline finding.
  // Three iterations: Spark's death at 100 machines comes from state
  // accumulating across iterations, not the first pass.
  auto paper = [](TextGranularity gran) {
    LdaExperiment exp;
    exp.config.machines = 100;
    exp.config.iterations = 3;
    exp.granularity = gran;
    exp.config.data.actual_per_machine = 8;
    return exp;
  };
  EXPECT_TRUE(RunLdaRelDb(paper(TextGranularity::kSuperVertex),
                          nullptr).ok());
  EXPECT_FALSE(RunLdaBsp(paper(TextGranularity::kSuperVertex),
                         nullptr).ok());
  EXPECT_FALSE(RunLdaDataflow(paper(TextGranularity::kSuperVertex),
                              nullptr).ok());
  EXPECT_FALSE(RunLdaGas(paper(TextGranularity::kSuperVertex),
                         nullptr).ok());
}

TEST(LdaChain, TopicsFitTheCorpusOnDataflow) {
  // End-to-end statistical sanity: on a topic-free Zipf corpus the
  // trained word distributions must move toward the empirical unigram
  // distribution, away from the sparse Dirichlet prior draw.
  LdaExperiment exp = SmallLda(TextGranularity::kDocument);
  CorpusGen gen(exp.config.seed, exp.vocab, exp.mean_doc_len);
  models::Vector unigram(exp.vocab);
  double total = 0;
  for (long long j = 0; j < 100; ++j) {
    for (auto w : gen.Document(0, j)) {
      unigram[w] += 1;
      total += 1;
    }
  }
  unigram /= total;
  auto row_l1 = [&](const models::Vector& row) {
    double dist = 0;
    for (std::size_t w = 0; w < row.size(); ++w) {
      dist += std::fabs(row[w] - unigram[w]);
    }
    return dist;
  };
  auto avg_l1 = [&](const models::LdaParams& p) {
    double dist = 0;
    for (const auto& row : p.phi) dist += row_l1(row);
    return dist / static_cast<double>(p.phi.size());
  };
  auto min_l1 = [&](const models::LdaParams& p) {
    double best = 1e300;
    for (const auto& row : p.phi) best = std::min(best, row_l1(row));
    return best;
  };
  exp.config.iterations = 1;
  models::LdaParams first;
  ASSERT_TRUE(RunLdaDataflow(exp, &first).ok());
  exp.config.iterations = 40;
  models::LdaParams last;
  ASSERT_TRUE(RunLdaDataflow(exp, &last).ok());
  // The fit improves overall, and the busiest topics track the corpus
  // distribution closely (low-traffic topics stay near their sparse
  // prior, keeping the average high).
  // (Exact topic recovery is covered by models_test on structured
  // corpora; this corpus is topic-free, so we assert directional fit.)
  EXPECT_LT(avg_l1(last), avg_l1(first));
  EXPECT_LT(min_l1(last), min_l1(first));
  EXPECT_LT(min_l1(last), 1.2);
}

}  // namespace
}  // namespace mlbench::core
