#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "stats/distributions.h"
#include "stats/rng.h"

namespace mlbench::stats {
namespace {

constexpr int kDraws = 50000;

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(7);
  double mean = 0;
  for (int i = 0; i < kDraws; ++i) {
    double u = rng.NextDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  EXPECT_NEAR(mean / kDraws, 0.5, 0.01);
}

TEST(RngTest, BoundedAvoidsModuloBias) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(7)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 7.0, 5 * std::sqrt(kDraws));
}

TEST(RngTest, SplitStreamsAreStableAndIndependent) {
  Rng base(42);
  Rng s1 = base.Split(3);
  base.NextU64();  // consuming from the parent must not change splits
  Rng s2 = Rng(42).Split(3);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(s1.NextU64(), s2.NextU64());
  Rng other = Rng(42).Split(4);
  EXPECT_NE(Rng(42).Split(3).NextU64(), other.NextU64());
}

struct MomentParams {
  const char* name;
  double mean;
  double var;
  double tol_mean;
  double tol_var;
  double (*draw)(Rng&);
};

class MomentSweep : public ::testing::TestWithParam<MomentParams> {};

TEST_P(MomentSweep, SampleMomentsMatchTheory) {
  const auto& p = GetParam();
  Rng rng(2024);
  double sum = 0, sumsq = 0;
  for (int i = 0; i < kDraws; ++i) {
    double x = p.draw(rng);
    sum += x;
    sumsq += x * x;
  }
  double mean = sum / kDraws;
  double var = sumsq / kDraws - mean * mean;
  EXPECT_NEAR(mean, p.mean, p.tol_mean) << p.name;
  EXPECT_NEAR(var, p.var, p.tol_var) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, MomentSweep,
    ::testing::Values(
        MomentParams{"std_normal", 0.0, 1.0, 0.02, 0.05,
                     [](Rng& r) { return SampleStandardNormal(r); }},
        MomentParams{"normal_3_2", 3.0, 4.0, 0.04, 0.15,
                     [](Rng& r) { return SampleNormal(r, 3.0, 2.0); }},
        MomentParams{"gamma_2_3", 6.0, 18.0, 0.1, 1.2,
                     [](Rng& r) { return SampleGamma(r, 2.0, 3.0); }},
        MomentParams{"gamma_half", 0.5, 0.5, 0.02, 0.08,
                     [](Rng& r) { return SampleGamma(r, 0.5, 1.0); }},
        // InverseGamma(shape=4, rate=6): mean 2, var 4/( (3^2)(2) )*36=2
        MomentParams{"inv_gamma_4_6", 2.0, 2.0, 0.05, 0.5,
                     [](Rng& r) { return SampleInverseGamma(r, 4.0, 6.0); }},
        // Beta(2,3): mean 0.4, var 0.04
        MomentParams{"beta_2_3", 0.4, 0.04, 0.01, 0.005,
                     [](Rng& r) { return SampleBeta(r, 2.0, 3.0); }},
        // Exponential(2): mean .5, var .25
        MomentParams{"exp_2", 0.5, 0.25, 0.01, 0.03,
                     [](Rng& r) { return SampleExponential(r, 2.0); }},
        // InverseGaussian(mu=2, lambda=4): mean 2, var mu^3/lambda = 2
        MomentParams{"inv_gauss_2_4", 2.0, 2.0, 0.05, 0.35,
                     [](Rng& r) { return SampleInverseGaussian(r, 2.0, 4.0); }}),
    [](const ::testing::TestParamInfo<MomentParams>& info) {
      return info.param.name;
    });

TEST(BetaTest, TinyShapesNeverUnderflowToNaN) {
  // Regression: with shapes this small both Gamma draws underflow to 0 in
  // linear space, making x / (x + y) = 0/0 = NaN before the log-space
  // fallback existed.
  Rng rng(71);
  for (auto [a, b] : {std::pair<double, double>{1e-4, 1e-4},
                      {1e-6, 1e-3},
                      {1e-3, 1e-6},
                      {1e-5, 2.0},
                      {2.0, 1e-5}}) {
    for (int i = 0; i < 2000; ++i) {
      double v = SampleBeta(rng, a, b);
      ASSERT_TRUE(std::isfinite(v)) << "a=" << a << " b=" << b;
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 1.0);
    }
  }
}

TEST(BetaTest, SkewMatchesTinyShapeRatio) {
  // Beta(a, b) with a << b should put nearly all mass near 0 and
  // vice versa; the log-space fallback must preserve the direction.
  Rng rng(72);
  double mean_small_a = 0, mean_small_b = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    mean_small_a += SampleBeta(rng, 1e-4, 1.0) / n;
    mean_small_b += SampleBeta(rng, 1.0, 1e-4) / n;
  }
  EXPECT_LT(mean_small_a, 0.05);
  EXPECT_GT(mean_small_b, 0.95);
}

TEST(CategoricalTest, FrequenciesMatchWeights) {
  Rng rng(5);
  linalg::Vector w{1.0, 2.0, 3.0, 4.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[SampleCategorical(rng, w)];
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(kDraws), (k + 1) / 10.0, 0.01);
  }
}

TEST(CategoricalTest, ZeroWeightNeverDrawn) {
  Rng rng(6);
  linalg::Vector w{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(SampleCategorical(rng, w), 1u);
}

TEST(MultinomialTest, CountsSumToTrials) {
  Rng rng(9);
  auto counts = SampleMultinomial(rng, {0.2, 0.3, 0.5}, 1000);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0ULL), 1000ULL);
  EXPECT_NEAR(static_cast<double>(counts[2]), 500.0, 80.0);
}

TEST(AliasTableTest, MatchesLinearScanDistribution) {
  std::vector<double> w = {5, 1, 1, 1, 2};
  AliasTable table(w);
  Rng rng(13);
  std::vector<int> counts(w.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[table.Sample(rng)];
  double total = 10.0;
  for (std::size_t k = 0; k < w.size(); ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(kDraws), w[k] / total, 0.012);
  }
}

TEST(ZipfTest, WeightsDecayAsPowerLaw) {
  auto w = ZipfWeights(100, 1.0);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_NEAR(w[9] / w[99], 10.0, 1e-9);
}

TEST(DirichletTest, DrawsLieOnSimplexWithCorrectMean) {
  Rng rng(21);
  linalg::Vector alpha{1.0, 2.0, 7.0};
  linalg::Vector mean(3);
  for (int i = 0; i < kDraws; ++i) {
    auto x = SampleDirichlet(rng, alpha);
    ASSERT_NEAR(x.Sum(), 1.0, 1e-9);
    for (double v : x) ASSERT_GE(v, 0.0);
    mean += x;
  }
  mean /= kDraws;
  EXPECT_NEAR(mean[0], 0.1, 0.005);
  EXPECT_NEAR(mean[2], 0.7, 0.005);
}

TEST(MvnTest, MeanAndCovarianceRecovered) {
  Rng rng(31);
  linalg::Vector mu{1.0, -2.0};
  linalg::Matrix cov(2, 2);
  cov(0, 0) = 2.0;
  cov(0, 1) = cov(1, 0) = 0.6;
  cov(1, 1) = 1.0;
  linalg::Vector mean(2);
  linalg::Matrix second(2, 2);
  for (int i = 0; i < kDraws; ++i) {
    auto x = SampleMultivariateNormal(rng, mu, cov);
    ASSERT_TRUE(x.ok());
    mean += *x;
    second += linalg::Matrix::Outer(*x, *x);
  }
  mean /= kDraws;
  EXPECT_NEAR(mean[0], 1.0, 0.03);
  EXPECT_NEAR(mean[1], -2.0, 0.03);
  second *= 1.0 / kDraws;
  linalg::Matrix emp_cov = second - linalg::Matrix::Outer(mean, mean);
  EXPECT_NEAR(emp_cov(0, 0), 2.0, 0.08);
  EXPECT_NEAR(emp_cov(0, 1), 0.6, 0.05);
}

TEST(WishartTest, MeanIsDofTimesScale) {
  Rng rng(41);
  linalg::Matrix scale(2, 2);
  scale(0, 0) = 1.0;
  scale(0, 1) = scale(1, 0) = 0.3;
  scale(1, 1) = 2.0;
  double dof = 5.0;
  linalg::Matrix mean(2, 2);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto w = SampleWishart(rng, dof, scale);
    ASSERT_TRUE(w.ok());
    mean += *w;
  }
  mean *= 1.0 / n;
  EXPECT_NEAR(mean(0, 0), dof * 1.0, 0.15);
  EXPECT_NEAR(mean(0, 1), dof * 0.3, 0.1);
  EXPECT_NEAR(mean(1, 1), dof * 2.0, 0.3);
}

TEST(WishartTest, RejectsTooFewDof) {
  Rng rng(1);
  EXPECT_FALSE(SampleWishart(rng, 1.0, linalg::Matrix::Identity(3)).ok());
}

TEST(InverseWishartTest, DrawsAreSpd) {
  Rng rng(51);
  linalg::Matrix scale = linalg::Matrix::Identity(3);
  for (int i = 0; i < 200; ++i) {
    auto w = SampleInverseWishart(rng, 6.0, scale);
    ASSERT_TRUE(w.ok());
    EXPECT_TRUE(linalg::Cholesky(*w).ok());
  }
}

TEST(InverseWishartTest, MeanMatchesClosedForm) {
  // E[InvWishart(dof, S)] = S / (dof - d - 1) for dof > d + 1.
  Rng rng(61);
  linalg::Matrix scale = linalg::Matrix::Identity(2) * 3.0;
  double dof = 8.0;
  linalg::Matrix mean(2, 2);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto w = SampleInverseWishart(rng, dof, scale);
    ASSERT_TRUE(w.ok());
    mean += *w;
  }
  mean *= 1.0 / n;
  EXPECT_NEAR(mean(0, 0), 3.0 / (8.0 - 2.0 - 1.0), 0.05);
  EXPECT_NEAR(mean(0, 1), 0.0, 0.05);
}

TEST(LogPdfTest, NormalMatchesClosedForm) {
  // N(0,1) at 0: -0.5 log(2 pi)
  EXPECT_NEAR(NormalLogPdf(0, 0, 1), -0.9189385332046727, 1e-12);
  EXPECT_NEAR(NormalLogPdf(1, 0, 1), -0.9189385332046727 - 0.5, 1e-12);
}

TEST(LogPdfTest, MvnReducesToProductOfUnivariates) {
  linalg::Vector x{0.3, -1.1};
  linalg::Vector mu{0.0, 1.0};
  linalg::Matrix cov = linalg::Matrix::Diagonal(linalg::Vector{4.0, 0.25});
  auto lp = MultivariateNormalLogPdf(x, mu, cov);
  ASSERT_TRUE(lp.ok());
  double expect = NormalLogPdf(0.3, 0.0, 2.0) + NormalLogPdf(-1.1, 1.0, 0.5);
  EXPECT_NEAR(*lp, expect, 1e-10);
}

}  // namespace
}  // namespace mlbench::stats
