#include <gtest/gtest.h>

#include <cmath>

#include "reldb/database.h"
#include "reldb/rel.h"
#include "reldb/vg_library.h"
#include "sim/cluster_sim.h"

namespace mlbench::reldb {
namespace {

class RelDbTest : public ::testing::Test {
 protected:
  RelDbTest()
      : sim_(sim::Ec2M2XLargeCluster(5)), db_(&sim_, sim::RelDbCosts{}, 42) {
    // data(data_id, dim_id, data_val): 4 points x 2 dims, scale 1e6.
    Table data(Schema{"data_id", "dim_id", "data_val"}, 1e6);
    for (std::int64_t p = 0; p < 4; ++p) {
      for (std::int64_t d = 0; d < 2; ++d) {
        data.Append(
            Tuple{p, d, static_cast<double>(10 * p + d)});
      }
    }
    db_.Put("data", std::move(data));

    // cluster(clus_id, alpha)
    Table cluster(Schema{"clus_id", "alpha"}, 1.0);
    for (std::int64_t k = 0; k < 3; ++k) cluster.Append(Tuple{k, 1.0});
    db_.Put("cluster", std::move(cluster));
  }

  sim::ClusterSim sim_;
  Database db_;
};

TEST_F(RelDbTest, VersionedNames) {
  EXPECT_EQ(Database::Versioned("beta", 7), "beta[7]");
}

TEST_F(RelDbTest, PutGetDrop) {
  EXPECT_TRUE(db_.Exists("data"));
  EXPECT_FALSE(db_.Exists("nope"));
  EXPECT_EQ(db_.Get("data")->actual_rows(), 8u);
  db_.Drop("data");
  EXPECT_FALSE(db_.Exists("data"));
}

TEST_F(RelDbTest, DropVersionsBefore) {
  for (int i = 0; i < 5; ++i) {
    db_.Put(Database::Versioned("m", i), Table(Schema{"x"}, 1.0));
  }
  db_.DropVersionsBefore("m", 3);
  EXPECT_FALSE(db_.Exists("m[0]"));
  EXPECT_FALSE(db_.Exists("m[2]"));
  EXPECT_TRUE(db_.Exists("m[3]"));
  EXPECT_TRUE(db_.Exists("m[4]"));
}

TEST_F(RelDbTest, ScanAndFilter) {
  db_.BeginQuery("q");
  auto r = Rel::Scan(db_, "data").Filter([](const Tuple& t) {
    return AsInt(t[1]) == 0;  // dim_id == 0
  });
  db_.EndQuery();
  EXPECT_EQ(r.table().actual_rows(), 4u);
  EXPECT_DOUBLE_EQ(r.logical_rows(), 4e6);
}

TEST_F(RelDbTest, ProjectRewritesRows) {
  db_.BeginQuery("q");
  auto r = Rel::Scan(db_, "data").Project(
      Schema{"data_id", "doubled"}, [](const Tuple& t) {
        return Tuple{t[0], AsDouble(t[2]) * 2.0};
      });
  db_.EndQuery();
  ASSERT_EQ(r.schema().size(), 2u);
  EXPECT_DOUBLE_EQ(AsDouble(r.table().rows()[1][1]), 2.0);
}

TEST_F(RelDbTest, GroupByComputesAggregates) {
  db_.BeginQuery("q");
  // Per-dimension mean of data_val (the paper's mean_prior view).
  auto r = Rel::Scan(db_, "data").GroupBy(
      {"dim_id"},
      {{AggOp::kAvg, "data_val", "dim_mean"},
       {AggOp::kSum, "data_val", "dim_sum"},
       {AggOp::kCount, "", "n"},
       {AggOp::kMin, "data_val", "lo"},
       {AggOp::kMax, "data_val", "hi"}},
      1.0);
  db_.EndQuery();
  ASSERT_EQ(r.table().actual_rows(), 2u);
  for (const auto& row : r.table().rows()) {
    std::int64_t dim = AsInt(row[0]);
    // values are 10p + d for p in 0..3
    EXPECT_DOUBLE_EQ(AsDouble(row[1]), 15.0 + dim);          // avg
    EXPECT_DOUBLE_EQ(AsDouble(row[2]), 60.0 + 4.0 * dim);    // sum
    EXPECT_DOUBLE_EQ(AsDouble(row[3]), 4e6);                 // logical count
    EXPECT_DOUBLE_EQ(AsDouble(row[4]), static_cast<double>(dim));  // min
    EXPECT_DOUBLE_EQ(AsDouble(row[5]), 30.0 + dim);          // max
  }
}

TEST_F(RelDbTest, HashJoinMatchesKeys) {
  Table members(Schema{"data_id", "clus_id"}, 1e6);
  members.Append(Tuple{std::int64_t{0}, std::int64_t{1}});
  members.Append(Tuple{std::int64_t{1}, std::int64_t{1}});
  members.Append(Tuple{std::int64_t{2}, std::int64_t{2}});
  members.Append(Tuple{std::int64_t{3}, std::int64_t{0}});
  db_.Put("membership", std::move(members));

  db_.BeginQuery("q");
  auto joined = Rel::Scan(db_, "data").HashJoin(
      Rel::Scan(db_, "membership"), {"data_id"}, {"data_id"}, 1e6);
  db_.EndQuery();
  // Every data row matches exactly one membership row.
  EXPECT_EQ(joined.table().actual_rows(), 8u);
  // Schema: data cols + clus_id.
  EXPECT_TRUE(joined.schema().Has("clus_id"));
  EXPECT_EQ(joined.schema().size(), 4u);
}

TEST_F(RelDbTest, JoinThenGroupByPipeline) {
  Table members(Schema{"data_id", "clus_id"}, 1e6);
  for (std::int64_t p = 0; p < 4; ++p) members.Append(Tuple{p, p % 2});
  db_.Put("membership", std::move(members));

  db_.BeginQuery("cluster_sums");
  auto sums =
      Rel::Scan(db_, "data")
          .HashJoin(Rel::Scan(db_, "membership"), {"data_id"}, {"data_id"},
                    1e6)
          .GroupBy({"clus_id", "dim_id"}, {{AggOp::kSum, "data_val", "s"}},
                   1.0);
  sums.Materialize("cluster_sums");
  db_.EndQuery();
  EXPECT_EQ(db_.Get("cluster_sums")->actual_rows(), 4u);  // 2 clusters x 2 dims
}

TEST_F(RelDbTest, UnionConcatenates) {
  db_.BeginQuery("q");
  auto a = Rel::Scan(db_, "cluster");
  auto b = Rel::Scan(db_, "cluster");
  EXPECT_EQ(a.Union(b).table().actual_rows(), 6u);
  db_.EndQuery();
}

TEST_F(RelDbTest, DirichletVgSamplesSimplex) {
  db_.BeginQuery("init_clus_prob");
  auto probs = Rel::Scan(db_, "cluster")
                   .VgApply(*std::make_unique<DirichletVg>("clus_id", "alpha"),
                            {}, 1.0);
  db_.EndQuery();
  ASSERT_EQ(probs.table().actual_rows(), 3u);
  double total = 0;
  for (const auto& row : probs.table().rows()) total += AsDouble(row[1]);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(RelDbTest, CategoricalVgPicksHeavyKey) {
  Table weights(Schema{"k", "w"}, 1.0);
  weights.Append(Tuple{std::int64_t{7}, 1e9});
  weights.Append(Tuple{std::int64_t{8}, 1e-9});
  db_.Put("w", std::move(weights));
  db_.BeginQuery("q");
  auto r = Rel::Scan(db_, "w").VgApply(
      *std::make_unique<CategoricalVg>("k", "w"), {}, 1.0);
  db_.EndQuery();
  ASSERT_EQ(r.table().actual_rows(), 1u);
  EXPECT_EQ(AsInt(r.table().rows()[0][0]), 7);
}

TEST_F(RelDbTest, VgApplyGroupsPerKey) {
  // One categorical draw per data point (multinomial_membership).
  Table probs(Schema{"data_id", "clus_id", "p"}, 1e6);
  for (std::int64_t p = 0; p < 4; ++p) {
    for (std::int64_t k = 0; k < 3; ++k) {
      probs.Append(Tuple{p, k, k == p % 3 ? 1e9 : 1.0});
    }
  }
  db_.Put("probs", std::move(probs));
  db_.BeginQuery("q");
  auto r = Rel::Scan(db_, "probs").VgApply(
      *std::make_unique<CategoricalVg>("clus_id", "p"), {"data_id"}, 1e6);
  db_.EndQuery();
  ASSERT_EQ(r.table().actual_rows(), 4u);
}

TEST_F(RelDbTest, NormalAndInverseVgFunctions) {
  Table params(Schema{"id", "mean", "var"}, 1.0);
  params.Append(Tuple{std::int64_t{0}, 5.0, 1e-12});
  db_.Put("params", std::move(params));
  db_.BeginQuery("q");
  auto n = Rel::Scan(db_, "params")
               .VgApply(*std::make_unique<NormalVg>("id", "mean", "var"), {},
                        1.0);
  db_.EndQuery();
  EXPECT_NEAR(AsDouble(n.table().rows()[0][1]), 5.0, 1e-3);

  Table ig(Schema{"id", "mu", "lambda"}, 1.0);
  ig.Append(Tuple{std::int64_t{0}, 2.0, 4.0});
  db_.Put("ig", std::move(ig));
  db_.BeginQuery("q2");
  auto g = Rel::Scan(db_, "ig").VgApply(
      *std::make_unique<InverseGaussianVg>("id", "mu", "lambda"), {}, 1.0);
  db_.EndQuery();
  EXPECT_GT(AsDouble(g.table().rows()[0][1]), 0.0);
}

TEST_F(RelDbTest, QueriesChargeMrJobLaunches) {
  double before = sim_.elapsed_seconds();
  db_.BeginQuery("one_job");
  Rel::Scan(db_, "cluster").Materialize("copy");
  db_.EndQuery();
  double one_job = sim_.elapsed_seconds() - before;
  EXPECT_GE(one_job, db_.costs().mr_job_launch_s);

  before = sim_.elapsed_seconds();
  db_.BeginQuery("two_jobs");
  Rel::Scan(db_, "data")
      .GroupBy({"dim_id"}, {{AggOp::kCount, "", "n"}}, 1.0)
      .Materialize("counts");
  db_.EndQuery();
  double two_jobs = sim_.elapsed_seconds() - before;
  EXPECT_GE(two_jobs, 2 * db_.costs().mr_job_launch_s);
}

TEST_F(RelDbTest, TupleOrientedMatricesAreExpensive) {
  // The paper's Bayesian-Lasso observation: a Gram matrix pushed through
  // GROUP BY as p^2 tuples per row costs far more than the same flops in a
  // linalg kernel. 20 points x 20x20 entries, scale 1e6.
  Table pairs(Schema{"d1", "d2", "v"}, 1e8);
  for (std::int64_t i = 0; i < 20; ++i) {
    for (std::int64_t j = 0; j < 20; ++j) pairs.Append(Tuple{i, j, 1.0});
  }
  db_.Put("pairs", std::move(pairs));
  db_.BeginQuery("gram");
  Rel::Scan(db_, "pairs").GroupBy({"d1", "d2"}, {{AggOp::kSum, "v", "s"}},
                                  1.0);
  double t = db_.EndQuery();
  // 4e10 logical tuples through the aggregate >> the same flops natively.
  double native = 4e10 * sim::CppModel().flop_s / sim_.spec().total_cores();
  EXPECT_GT(t, 5.0 * native);
}

TEST_F(RelDbTest, NeverUsesClusterRam) {
  db_.BeginQuery("q");
  Rel::Scan(db_, "data")
      .HashJoin(Rel::Scan(db_, "data"), {"data_id"}, {"data_id"}, 1e6)
      .Materialize("selfjoin");
  db_.EndQuery();
  for (int m = 0; m < sim_.machines(); ++m) {
    EXPECT_DOUBLE_EQ(sim_.used_bytes(m), 0.0);
  }
}

}  // namespace
}  // namespace mlbench::reldb
