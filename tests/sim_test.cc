#include <gtest/gtest.h>

#include "sim/cluster_sim.h"
#include "sim/cost_profile.h"
#include "sim/machine.h"

namespace mlbench::sim {
namespace {

TEST(MachineTest, Ec2FleetSpecs) {
  ClusterSpec spec = Ec2M2XLargeCluster(100);
  EXPECT_EQ(spec.machines, 100);
  EXPECT_EQ(spec.machine.cores, 8);
  EXPECT_EQ(spec.total_cores(), 800);
  EXPECT_GT(spec.total_ram_bytes(), 6e12);  // the paper's "7 TB of RAM"
}

TEST(ClusterSimTest, AllocateWithinRamSucceeds) {
  ClusterSim sim(Ec2M2XLargeCluster(2));
  EXPECT_TRUE(sim.Allocate(0, 1e9, "data").ok());
  EXPECT_DOUBLE_EQ(sim.used_bytes(0), 1e9);
  EXPECT_DOUBLE_EQ(sim.used_bytes(1), 0.0);
}

TEST(ClusterSimTest, OverAllocationReturnsOutOfMemory) {
  ClusterSim sim(Ec2M2XLargeCluster(1));
  Status st = sim.Allocate(0, 100e9, "giant gather views");
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_NE(st.message().find("giant gather views"), std::string::npos);
  // Failed allocation must not change the ledger.
  EXPECT_DOUBLE_EQ(sim.used_bytes(0), 0.0);
}

TEST(ClusterSimTest, AllocateEverywhereRollsBackOnFailure) {
  ClusterSim sim(Ec2M2XLargeCluster(3));
  ASSERT_TRUE(sim.Allocate(2, 60e9, "hog").ok());
  Status st = sim.AllocateEverywhere(20e9, "partitioned data");
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_DOUBLE_EQ(sim.used_bytes(0), 0.0);
  EXPECT_DOUBLE_EQ(sim.used_bytes(1), 0.0);
  EXPECT_DOUBLE_EQ(sim.used_bytes(2), 60e9);
}

TEST(ClusterSimTest, FreeClampsAtZero) {
  ClusterSim sim(Ec2M2XLargeCluster(1));
  ASSERT_TRUE(sim.Allocate(0, 5.0, "x").ok());
  sim.Free(0, 100.0);
  EXPECT_DOUBLE_EQ(sim.used_bytes(0), 0.0);
}

TEST(ClusterSimTest, PeakTracksHighWaterMark) {
  ClusterSim sim(Ec2M2XLargeCluster(2));
  ASSERT_TRUE(sim.Allocate(0, 10e9, "a").ok());
  sim.Free(0, 10e9);
  ASSERT_TRUE(sim.Allocate(1, 4e9, "b").ok());
  EXPECT_DOUBLE_EQ(sim.peak_bytes(), 10e9);
}

TEST(ClusterSimTest, PhaseTimeIsSlowestMachine) {
  ClusterSim sim(Ec2M2XLargeCluster(3));
  sim.BeginPhase("map");
  sim.ChargeCpu(0, 1.0);
  sim.ChargeCpu(1, 5.0);
  sim.ChargeCpu(2, 2.0);
  double t = sim.EndPhase();
  EXPECT_DOUBLE_EQ(t, 5.0);
  EXPECT_DOUBLE_EQ(sim.elapsed_seconds(), 5.0);
}

TEST(ClusterSimTest, NetworkAddsTransferAndLatency) {
  ClusterSpec spec = Ec2M2XLargeCluster(2);
  ClusterSim sim(spec);
  sim.BeginPhase("shuffle");
  sim.ChargeNetwork(0, spec.net_bytes_per_sec * 2.0);  // 2 seconds of traffic
  double t = sim.EndPhase();
  EXPECT_NEAR(t, 2.0 + spec.net_latency_s, 1e-12);
}

TEST(ClusterSimTest, FixedCostAddsSerially) {
  ClusterSim sim(Ec2M2XLargeCluster(2));
  sim.BeginPhase("job");
  sim.ChargeFixed(27.0);  // Hadoop job launch
  sim.ChargeCpu(0, 3.0);
  EXPECT_DOUBLE_EQ(sim.EndPhase(), 30.0);
}

TEST(ClusterSimTest, ParallelCpuDividesAcrossAllCores) {
  ClusterSim sim(Ec2M2XLargeCluster(5));  // 40 cores
  sim.BeginPhase("compute");
  sim.ChargeParallelCpu(80.0);
  EXPECT_DOUBLE_EQ(sim.EndPhase(), 2.0);
}

TEST(ClusterSimTest, ParallelCpuOnMachineDividesByCores) {
  ClusterSim sim(Ec2M2XLargeCluster(2));
  sim.BeginPhase("local");
  sim.ChargeParallelCpuOnMachine(1, 16.0);
  EXPECT_DOUBLE_EQ(sim.EndPhase(), 2.0);
}

TEST(ClusterSimTest, ResetClockKeepsLedger) {
  ClusterSim sim(Ec2M2XLargeCluster(1));
  ASSERT_TRUE(sim.Allocate(0, 7.0, "x").ok());
  sim.BeginPhase("init");
  sim.ChargeCpu(0, 9.0);
  sim.EndPhase();
  sim.ResetClock();
  EXPECT_DOUBLE_EQ(sim.elapsed_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(sim.used_bytes(0), 7.0);
}

TEST(ClusterSimTest, HistoryRecordsPhases) {
  ClusterSim sim(Ec2M2XLargeCluster(1));
  sim.BeginPhase("a");
  sim.ChargeCpu(0, 1.0);
  sim.EndPhase();
  sim.BeginPhase("b");
  sim.ChargeFixed(2.0);
  sim.EndPhase();
  ASSERT_EQ(sim.history().size(), 2u);
  EXPECT_EQ(sim.history()[0].name, "a");
  EXPECT_DOUBLE_EQ(sim.history()[1].fixed_seconds, 2.0);
}

TEST(ClusterSimTest, NoiseIsMultiplicativeAndSeeded) {
  auto run = [](std::uint64_t seed) {
    ClusterSim sim(Ec2M2XLargeCluster(1));
    sim.SetNoise(0.02, seed);
    sim.BeginPhase("p");
    sim.ChargeCpu(0, 100.0);
    return sim.EndPhase();
  };
  double a = run(1), b = run(1), c = run(2);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NEAR(a, 100.0, 10.0);
}

TEST(CostProfileTest, LanguageOrderings) {
  // The orderings the paper measures: Python record handling slowest,
  // Java linalg degrades with dimension, C++ fastest everywhere.
  auto cpp = CppModel(), java = JavaModel(), py = PythonModel();
  EXPECT_LT(cpp.per_record_s, java.per_record_s);
  EXPECT_LT(java.per_record_s, py.per_record_s);
  EXPECT_LT(cpp.LinalgSeconds(1e6, 1, 10), java.LinalgSeconds(1e6, 1, 10));
  // Java/Mallet is moderately slower at d=10 but collapses at d=100 while
  // NumPy stays vectorized (Section 5.6 "Java vs. Python").
  double java10 = java.LinalgSeconds(1e6, 10, 10);
  double java100 = java.LinalgSeconds(1e6, 10, 100);
  EXPECT_GT(java100 / java10, 1.5);
  double py100 = py.LinalgSeconds(1e6, 10, 100);
  EXPECT_GT(java100, py100);
}

TEST(CostProfileTest, Names) {
  EXPECT_STREQ(LanguageName(Language::kPython), "Python");
  EXPECT_STREQ(LanguageName(Language::kJava), "Java");
  EXPECT_STREQ(LanguageName(Language::kCpp), "C++");
}

}  // namespace
}  // namespace mlbench::sim
