#include <gtest/gtest.h>

// mlint: allow(raw-thread) — this suite tests the admission controller's
// cross-thread contract (races for last bytes, FIFO wakeups) and must
// observe it from real concurrent callers
#include <atomic>
#include <chrono>
// mlint: allow(raw-thread) — see above
#include <mutex>
// mlint: allow(raw-thread) — see above
#include <thread>
#include <vector>

#include "server/admission.h"
#include "sim/reservation.h"

namespace mlbench {
namespace {

using server::AdmissionController;
using server::Ticket;
using sim::ReservationLedger;

// ---- Pure ledger edge cases -------------------------------------------------

TEST(ReservationLedgerTest, ExactFitSucceedsAndOneMoreByteDoesNot) {
  ReservationLedger ledger(100.0);
  auto a = ledger.Reserve(60.0, "a");
  ASSERT_TRUE(a.ok());
  // Exactly the remaining budget must fit — no hidden slack.
  auto b = ledger.Reserve(40.0, "b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ledger.available_bytes(), 0.0);
  auto c = ledger.Reserve(1e-9, "c");
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  // Releasing frees exactly what was reserved.
  ASSERT_TRUE(ledger.Release(*b).ok());
  EXPECT_EQ(ledger.available_bytes(), 40.0);
  EXPECT_TRUE(ledger.Fits(40.0));
}

TEST(ReservationLedgerTest, NeverFitsIsAboutTheWholeBudget) {
  ReservationLedger ledger(100.0);
  EXPECT_FALSE(ledger.NeverFits(100.0));
  EXPECT_TRUE(ledger.NeverFits(100.5));
  ASSERT_TRUE(ledger.Reserve(100.0, "all").ok());
  // Still not "never": it would fit on an idle ledger.
  EXPECT_FALSE(ledger.NeverFits(100.0));
  EXPECT_FALSE(ledger.Fits(1.0));
}

TEST(ReservationLedgerTest, DoubleReleaseIsAnError) {
  ReservationLedger ledger(10.0);
  auto id = ledger.Reserve(10.0, "x");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(ledger.Release(*id).ok());
  Status again = ledger.Release(*id);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kNotFound);
  EXPECT_EQ(ledger.reserved_bytes(), 0.0);
}

TEST(ReservationLedgerTest, PeakTracksHighWaterMark) {
  ReservationLedger ledger(100.0);
  auto a = ledger.Reserve(70.0, "a");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(ledger.Release(*a).ok());
  auto b = ledger.Reserve(30.0, "b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ledger.peak_reserved_bytes(), 70.0);
  EXPECT_EQ(ledger.reserved_bytes(), 30.0);
  EXPECT_EQ(ledger.active(), 1u);
}

// ---- Controller: admission, shedding, FIFO ----------------------------------

TEST(AdmissionControllerTest, ExactFitAdmitsImmediately) {
  AdmissionController ctl(100.0, /*max_queue=*/4);
  auto t = ctl.Admit(100.0, /*deadline_ms=*/0, "whole budget");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->admitted());
  EXPECT_EQ(ctl.reserved_bytes(), 100.0);
  EXPECT_EQ(ctl.stats().admitted, 1);
  EXPECT_EQ(ctl.stats().admitted_after_wait, 0);
}

TEST(AdmissionControllerTest, NeverFitsRejectsWithoutQueueing) {
  AdmissionController ctl(100.0, /*max_queue=*/4);
  auto t = ctl.Admit(101.0, /*deadline_ms=*/0, "too big");
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctl.stats().rejected_never_fits, 1);
  EXPECT_EQ(ctl.queue_depth(), 0u);
}

TEST(AdmissionControllerTest, ReservationReleasedOnFailurePath) {
  AdmissionController ctl(100.0, /*max_queue=*/4);
  // A session that admits and then bails early (engine failure, protocol
  // error, crash recovery) must return its bytes via the Ticket's RAII —
  // no explicit release call on the failure path.
  auto failing_session = [&ctl]() -> Status {
    auto t = ctl.Admit(80.0, 0, "doomed run");
    MLBENCH_RETURN_NOT_OK(t.status());
    return Status::Internal("simulated mid-run crash");
  };
  EXPECT_FALSE(failing_session().ok());
  EXPECT_EQ(ctl.reserved_bytes(), 0.0);
  // The budget is whole again: an exact-fit admission still works.
  auto t = ctl.Admit(100.0, 0, "after crash");
  ASSERT_TRUE(t.ok());
}

TEST(AdmissionControllerTest, DeadlineShedsWhileQueued) {
  AdmissionController ctl(100.0, /*max_queue=*/4);
  auto hog = ctl.Admit(100.0, 0, "hog");
  ASSERT_TRUE(hog.ok());
  auto start = std::chrono::steady_clock::now();
  auto t = ctl.Admit(10.0, /*deadline_ms=*/50, "impatient");
  auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(waited.count(), 40);
  EXPECT_EQ(ctl.stats().shed_deadline, 1);
  EXPECT_EQ(ctl.queue_depth(), 0u) << "shed waiter must leave the queue";
}

TEST(AdmissionControllerTest, FullQueueShedsImmediately) {
  AdmissionController ctl(10.0, /*max_queue=*/1);
  auto hog = ctl.Admit(10.0, 0, "hog");
  ASSERT_TRUE(hog.ok());

  // mlint: allow(raw-thread) — a real blocked waiter occupies the queue
  std::thread waiter([&] {
    // This occupies the single queue slot until the hog releases.
    auto t = ctl.Admit(10.0, 0, "patient");
    EXPECT_TRUE(t.ok());
  });
  // mlint: allow(raw-thread) — test synchronisation
  while (ctl.queue_depth() < 1) std::this_thread::yield();

  // Queue full: the next request is shed now, not enqueued.
  auto shed = ctl.Admit(10.0, 0, "one too many");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctl.stats().shed_queue_full, 1);

  hog->Release();
  waiter.join();
  EXPECT_EQ(ctl.stats().admitted_after_wait, 1);
}

TEST(AdmissionControllerTest, TwoSessionsRaceForTheLastBytes) {
  AdmissionController ctl(100.0, /*max_queue=*/4);
  auto held = ctl.Admit(60.0, 0, "held");
  ASSERT_TRUE(held.ok());

  // Two sessions race for the remaining 40 bytes. Exactly one can hold
  // them at a time; the budget must never oversubscribe, and both must
  // eventually be admitted once the winner releases.
  // mlint: allow(raw-thread) — observes the race under test
  std::atomic<int> concurrently_holding{0};
  // mlint: allow(raw-thread) — observes the race under test
  std::atomic<int> max_holding{0};
  // mlint: allow(raw-thread) — the race under test
  std::vector<std::thread> racers;
  for (int i = 0; i < 2; ++i) {
    racers.emplace_back([&ctl, &concurrently_holding, &max_holding] {
      auto t = ctl.Admit(40.0, /*deadline_ms=*/5000, "racer");
      ASSERT_TRUE(t.ok());
      int now = concurrently_holding.fetch_add(1) + 1;
      int seen = max_holding.load();
      while (now > seen && !max_holding.compare_exchange_weak(seen, now)) {
      }
      // mlint: allow(raw-thread) — widens the hold window
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      concurrently_holding.fetch_sub(1);
    });
  }
  for (auto& th : racers) th.join();

  EXPECT_EQ(max_holding.load(), 1) << "both racers held the last bytes";
  EXPECT_LE(ctl.stats().peak_reserved_bytes, 100.0);
  EXPECT_EQ(ctl.stats().admitted, 3);
  EXPECT_GE(ctl.stats().admitted_after_wait, 1);
  EXPECT_EQ(ctl.reserved_bytes(), 60.0);  // only `held` is still live
}

TEST(AdmissionControllerTest, QueueThenAdmitOrderIsFifoDeterministic) {
  AdmissionController ctl(100.0, /*max_queue=*/8);
  auto hog = ctl.Admit(100.0, 0, "hog");
  ASSERT_TRUE(hog.ok());

  // Enqueue four waiters in a known arrival order (each thread is only
  // started once the previous one is visibly queued), then free the
  // budget. Strict FIFO admission means the admit order must equal the
  // arrival order on every run — this is the determinism half of the
  // queue-then-admit contract.
  // mlint: allow(raw-thread) — arrival order is the property under test
  std::mutex order_mu;
  std::vector<int> admit_order;
  // mlint: allow(raw-thread) — see above
  std::vector<std::thread> waiters;
  constexpr int kWaiters = 4;
  for (int i = 0; i < kWaiters; ++i) {
    std::size_t depth_before = ctl.queue_depth();
    waiters.emplace_back([&ctl, &order_mu, &admit_order, i] {
      auto t = ctl.Admit(100.0, /*deadline_ms=*/10000, "waiter");
      ASSERT_TRUE(t.ok()) << "waiter " << i;
      {
        // mlint: allow(raw-thread) — guards the admit-order log
        std::lock_guard<std::mutex> lock(order_mu);
        admit_order.push_back(i);
      }
      // Ticket released at scope end; the next-in-line waiter admits.
    });
    // mlint: allow(raw-thread) — pins the arrival order
    while (ctl.queue_depth() == depth_before) std::this_thread::yield();
  }

  hog->Release();
  for (auto& th : waiters) th.join();

  ASSERT_EQ(admit_order.size(), static_cast<std::size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(admit_order[i], i) << "FIFO order violated at position " << i;
  }
  EXPECT_EQ(ctl.stats().admitted, 1 + kWaiters);
  EXPECT_EQ(ctl.stats().admitted_after_wait, kWaiters);
}

TEST(AdmissionControllerTest, ShutdownWakesWaitersAndFailsNewAdmits) {
  AdmissionController ctl(10.0, /*max_queue=*/4);
  auto hog = ctl.Admit(10.0, 0, "hog");
  ASSERT_TRUE(hog.ok());

  // mlint: allow(raw-thread) — waiter must be woken by Shutdown
  std::thread waiter([&ctl] {
    auto t = ctl.Admit(10.0, 0, "waiter");
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.status().code(), StatusCode::kResourceExhausted);
  });
  // mlint: allow(raw-thread) — test synchronisation
  while (ctl.queue_depth() < 1) std::this_thread::yield();

  ctl.Shutdown();
  waiter.join();

  auto late = ctl.Admit(1.0, 0, "late");
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kResourceExhausted);
  // The hog's live ticket still releases cleanly after shutdown.
  hog->Release();
  EXPECT_EQ(ctl.reserved_bytes(), 0.0);
}

}  // namespace
}  // namespace mlbench
