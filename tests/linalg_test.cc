#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "stats/rng.h"

namespace mlbench::linalg {
namespace {

TEST(VectorTest, Arithmetic) {
  Vector a{1, 2, 3};
  Vector b{4, 5, 6};
  EXPECT_EQ((a + b), (Vector{5, 7, 9}));
  EXPECT_EQ((b - a), (Vector{3, 3, 3}));
  EXPECT_EQ((a * 2.0), (Vector{2, 4, 6}));
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(a.Sum(), 6.0);
  EXPECT_DOUBLE_EQ((Vector{3, 4}).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 27.0);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(i.Trace(), 3.0);
  Matrix d = Matrix::Diagonal(Vector{2, 5});
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
}

TEST(MatrixTest, OuterProduct) {
  Matrix o = Matrix::Outer(Vector{1, 2}, Vector{3, 4, 5});
  EXPECT_EQ(o.rows(), 2u);
  EXPECT_EQ(o.cols(), 3u);
  EXPECT_DOUBLE_EQ(o(1, 2), 10.0);
}

TEST(MatrixTest, MatMulAgainstHandComputed) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b = MatMul(a, a);
  EXPECT_DOUBLE_EQ(b(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(b(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(b(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 22.0);
}

TEST(MatrixTest, MatVecAndQuadraticForm) {
  Matrix a = Matrix::Identity(2);
  a(0, 1) = 1;
  Vector x{2, 3};
  Vector y = MatVec(a, x);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  // x^T A x = 2*5 + 3*3
  EXPECT_DOUBLE_EQ(QuadraticForm(a, x), 19.0);
}

TEST(MatrixTest, TransposeBlockRowCol) {
  Matrix a(2, 3);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = 10.0 * r + c;
  Matrix t = a.Transposed();
  EXPECT_DOUBLE_EQ(t(2, 1), a(1, 2));
  EXPECT_EQ(a.Row(1), (Vector{10, 11, 12}));
  EXPECT_EQ(a.Col(2), (Vector{2, 12}));
  Matrix b = a.Block(0, 1, 2, 2);
  EXPECT_DOUBLE_EQ(b(1, 0), 11.0);
}

Matrix RandomSpd(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.NextDouble() - 0.5;
  Matrix spd = MatMul(b, b.Transposed());
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

class CholeskySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySweep, ReconstructsInput) {
  const std::size_t n = GetParam();
  Matrix a = RandomSpd(n, 7 + n);
  auto l = Cholesky(a);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  Matrix back = MatMul(*l, l->Transposed());
  EXPECT_LT((back - a).MaxAbs(), 1e-9 * a.MaxAbs());
}

TEST_P(CholeskySweep, SolveSatisfiesSystem) {
  const std::size_t n = GetParam();
  Matrix a = RandomSpd(n, 100 + n);
  stats::Rng rng(n);
  Vector b(n);
  for (auto& v : b) v = rng.NextDouble();
  auto x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  Vector back = MatVec(a, *x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], b[i], 1e-8);
}

TEST_P(CholeskySweep, InverseRoundTrips) {
  const std::size_t n = GetParam();
  Matrix a = RandomSpd(n, 200 + n);
  auto inv = InverseSpd(a);
  ASSERT_TRUE(inv.ok());
  Matrix prod = MatMul(a, *inv);
  EXPECT_LT((prod - Matrix::Identity(n)).MaxAbs(), 1e-8);
}

TEST_P(CholeskySweep, LogDetMatchesDiagonalCase) {
  const std::size_t n = GetParam();
  Vector d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = 1.0 + static_cast<double>(i);
  auto ld = LogDetSpd(Matrix::Diagonal(d));
  ASSERT_TRUE(ld.ok());
  double expect = 0;
  for (std::size_t i = 0; i < n; ++i) expect += std::log(d[i]);
  EXPECT_NEAR(*ld, expect, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Dims, CholeskySweep,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 10, 25,
                                                        50, 100));

TEST(MatrixTest, CholeskyRejectsNonSpd) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(1, 1) = -1;
  EXPECT_FALSE(Cholesky(a).ok());
  Matrix rect(2, 3);
  EXPECT_FALSE(Cholesky(rect).ok());
}

TEST(MatrixTest, TriangularSubstitution) {
  Matrix l(2, 2);
  l(0, 0) = 2;
  l(1, 0) = 1;
  l(1, 1) = 3;
  Vector y = ForwardSubstitute(l, Vector{4, 7});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0 / 3.0);
  // L^T x = y round trip: solve then multiply back.
  Vector x = BackSubstituteTransposed(l, y);
  EXPECT_NEAR(l(0, 0) * x[0] + l(1, 0) * x[1], y[0], 1e-12);
  EXPECT_NEAR(l(1, 1) * x[1], y[1], 1e-12);
}

}  // namespace
}  // namespace mlbench::linalg
