#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "dataflow/rdd.h"
#include "sim/cluster_sim.h"

namespace mlbench::dataflow {
namespace {

class DataflowTest : public ::testing::Test {
 protected:
  DataflowTest() : sim_(sim::Ec2M2XLargeCluster(4)) {
    ContextOptions opts;
    opts.language = sim::Language::kPython;
    opts.scale = 1000.0;  // each actual record stands for 1000 logical
    ctx_ = std::make_unique<Context>(&sim_, opts);
  }

  Rdd<long long> Numbers(long long per_partition) {
    return Generate<long long>(
        *ctx_, per_partition,
        [per_partition](int p, long long i) { return p * per_partition + i; },
        sizeof(long long));
  }

  sim::ClusterSim sim_;
  std::unique_ptr<Context> ctx_;
};

TEST_F(DataflowTest, GenerateAndCollect) {
  auto rdd = Numbers(10);
  auto rows = rdd.Collect();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 40u);
  long long sum = std::accumulate(rows->begin(), rows->end(), 0LL);
  EXPECT_EQ(sum, 39 * 40 / 2);
}

TEST_F(DataflowTest, CountsActualAndLogical) {
  auto rdd = Numbers(25);
  auto actual = rdd.CountActual();
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(*actual, 100);
  auto logical = rdd.CountLogical();
  ASSERT_TRUE(logical.ok());
  EXPECT_DOUBLE_EQ(*logical, 100000.0);
}

TEST_F(DataflowTest, MapTransforms) {
  auto rdd = Numbers(5).Map([](const long long& x) { return 2 * x; });
  auto rows = rdd.Collect();
  ASSERT_TRUE(rows.ok());
  for (long long v : *rows) EXPECT_EQ(v % 2, 0);
}

TEST_F(DataflowTest, FilterKeeps) {
  auto rdd = Numbers(10).Filter([](const long long& x) { return x % 2 == 0; });
  auto n = rdd.CountActual();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 20);
}

TEST_F(DataflowTest, FlatMapExpands) {
  auto rdd = Numbers(3).FlatMap([](const long long& x) {
    return std::vector<long long>{x, x};
  });
  auto n = rdd.CountActual();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 24);
}

TEST_F(DataflowTest, ReduceSums) {
  auto total = Numbers(10).Reduce(
      [](const long long& a, const long long& b) { return a + b; });
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 39 * 40 / 2);
}

TEST_F(DataflowTest, ReduceByKeyAggregatesAcrossPartitions) {
  // Key = value % 3; every partition contributes to every key.
  auto pairs = Numbers(30).Map([](const long long& x) {
    return std::pair<int, long long>(static_cast<int>(x % 3), 1LL);
  });
  auto counts = ReduceByKey(
      pairs, [](const long long& a, const long long& b) { return a + b; });
  auto m = CollectAsMap(counts);
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->size(), 3u);
  EXPECT_EQ((*m)[0] + (*m)[1] + (*m)[2], 120);
}

TEST_F(DataflowTest, MapValuesKeepsKeys) {
  auto pairs = Numbers(6).Map([](const long long& x) {
    return std::pair<int, long long>(static_cast<int>(x % 2), x);
  });
  auto doubled = MapValues(pairs, [](const long long& v) { return v * 10; });
  auto rows = doubled.Collect();
  ASSERT_TRUE(rows.ok());
  for (const auto& [k, v] : *rows) {
    EXPECT_EQ(v % 10, 0);
    EXPECT_TRUE(k == 0 || k == 1);
  }
}

TEST_F(DataflowTest, GroupByKeyCollectsAllValues) {
  auto pairs = Numbers(10).Map([](const long long& x) {
    return std::pair<int, long long>(static_cast<int>(x % 2), x);
  });
  auto grouped = GroupByKey(pairs);
  auto rows = grouped.Collect();
  ASSERT_TRUE(rows.ok());
  std::size_t total = 0;
  for (const auto& [k, vs] : *rows) total += vs.size();
  EXPECT_EQ(total, 40u);
}

TEST_F(DataflowTest, JoinMatchesKeys) {
  auto left = Numbers(4).Map([](const long long& x) {
    return std::pair<int, long long>(static_cast<int>(x % 4), x);
  });
  auto right = Parallelize<std::pair<int, std::string>>(
      *ctx_, {{0, "zero"}, {1, "one"}}, 16);
  auto joined = Join(left, right, /*out_scale=*/1000.0);
  auto rows = joined.Collect();
  ASSERT_TRUE(rows.ok());
  // 16 left records, keys 0..3 uniformly -> 8 match keys {0, 1}.
  EXPECT_EQ(rows->size(), 8u);
  for (const auto& [k, vw] : *rows) EXPECT_TRUE(k == 0 || k == 1);
}

TEST_F(DataflowTest, CacheAllocatesAndUnpersistFrees) {
  // First run a trivial job so the lifetime peer buffers are pinned and
  // the cache delta can be measured cleanly.
  ASSERT_TRUE(Numbers(1).CountActual().ok());
  double baseline = 0;
  for (int m = 0; m < sim_.machines(); ++m) baseline += sim_.used_bytes(m);

  auto rdd = Numbers(100);
  rdd.Cache();
  ASSERT_TRUE(rdd.CountActual().ok());
  double used = 0;
  for (int m = 0; m < sim_.machines(); ++m) used += sim_.used_bytes(m);
  // 400 actual * 1000 scale * 8 bytes
  EXPECT_DOUBLE_EQ(used - baseline, 400.0 * 1000 * 8);
  // Second evaluation hits the cache (and must give the same answer).
  auto n = rdd.CountActual();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 400);
  rdd.Unpersist();
  used = 0;
  for (int m = 0; m < sim_.machines(); ++m) used += sim_.used_bytes(m);
  EXPECT_DOUBLE_EQ(used, baseline);
}

TEST_F(DataflowTest, ActionsAdvanceSimulatedClock) {
  auto rdd = Numbers(1000);
  double before = sim_.elapsed_seconds();
  ASSERT_TRUE(rdd.CountActual().ok());
  double after = sim_.elapsed_seconds();
  // At least the job-launch cost must have elapsed.
  EXPECT_GT(after - before, ctx_->options().costs.job_launch_s * 0.99);
}

TEST_F(DataflowTest, PythonSlowerThanJavaOnSameJob) {
  auto run = [](sim::Language lang) {
    sim::ClusterSim sim(sim::Ec2M2XLargeCluster(4));
    ContextOptions opts;
    opts.language = lang;
    opts.scale = 1e6;
    Context ctx(&sim, opts);
    auto rdd = Generate<long long>(
        ctx, 100, [](int p, long long i) { return p + i; }, 8);
    auto mapped = rdd.Map([](const long long& x) { return x + 1; });
    EXPECT_TRUE(mapped.CountActual().ok());
    return sim.elapsed_seconds();
  };
  EXPECT_GT(run(sim::Language::kPython), 1.5 * run(sim::Language::kJava));
}

TEST_F(DataflowTest, OversizedCacheFailsWithOutOfMemory) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(1));
  ContextOptions opts;
  opts.scale = 1e9;  // 1000 actual -> 1e12 logical records * 8 B = 8 TB
  Context ctx(&sim, opts);
  auto rdd = Generate<long long>(
      ctx, 1000, [](int, long long i) { return i; }, 8);
  rdd.Cache();
  auto n = rdd.CountActual();
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsOutOfMemory());
}

TEST_F(DataflowTest, OversizedGroupByKeyFailsButReduceByKeySucceeds) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(1));
  ContextOptions opts;
  opts.scale = 2e9;
  Context ctx(&sim, opts);
  auto pairs = Generate<std::pair<int, long long>>(
                   ctx, 1000,
                   [](int, long long i) {
                     return std::pair<int, long long>(
                         static_cast<int>(i % 4), i);
                   },
                   48);
  // groupByKey materializes all logical values: 1000 * 2e9 * 48 B >> RAM.
  auto grouped = GroupByKey(pairs);
  auto g = grouped.Collect();
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsOutOfMemory());
  // reduceByKey combines map-side down to 4 keys and stays tiny.
  auto reduced = ReduceByKey(
      pairs, [](const long long& a, const long long& b) { return a + b; });
  EXPECT_TRUE(reduced.Collect().ok());
}

TEST_F(DataflowTest, TransientBuffersFreedAfterJob) {
  ASSERT_TRUE(Numbers(1).CountActual().ok());  // pin lifetime buffers
  std::vector<double> baseline(sim_.machines());
  for (int m = 0; m < sim_.machines(); ++m) baseline[m] = sim_.used_bytes(m);

  auto pairs = Numbers(50).Map([](const long long& x) {
    return std::pair<int, long long>(static_cast<int>(x % 5), x);
  });
  auto reduced = ReduceByKey(
      pairs, [](const long long& a, const long long& b) { return a + b; });
  ASSERT_TRUE(reduced.Collect().ok());
  for (int m = 0; m < sim_.machines(); ++m) {
    EXPECT_DOUBLE_EQ(sim_.used_bytes(m), baseline[m]) << "machine " << m;
  }
}

TEST_F(DataflowTest, ReleaseLifetimeStateFreesPeersAndResiduals) {
  ASSERT_TRUE(Numbers(1).CountActual().ok());
  ctx_->BeginJob("broadcast", 4);
  ASSERT_TRUE(ctx_->BroadcastClosure(1e6).ok());
  ctx_->EndJob();
  double used = 0;
  for (int m = 0; m < sim_.machines(); ++m) used += sim_.used_bytes(m);
  EXPECT_GT(used, 0.0);  // peers + closure residuals
  ctx_->ReleaseLifetimeState();
  used = 0;
  for (int m = 0; m < sim_.machines(); ++m) used += sim_.used_bytes(m);
  EXPECT_DOUBLE_EQ(used, 0.0);
}

}  // namespace
}  // namespace mlbench::dataflow
