#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/gmm_bsp.h"
#include "core/gmm_dataflow.h"
#include "core/gmm_gas.h"
#include "core/gmm_reldb.h"
#include "exec/thread_pool.h"

// Parity contract for the fault-injection PR (DESIGN.md §12):
//
//  1. With fault injection disabled (the default ExperimentConfig), every
//     platform produces charges, RNG draws, and model bits identical to the
//     pre-PR engines — pinned below as %.17g golden literals captured from
//     the pre-PR build, compared with EXPECT_EQ (no tolerance), at both 1
//     and 4 host threads.
//  2. With a seeded fault schedule, the same seed reproduces the same
//     recovery costs and the same model samples at any MLBENCH_THREADS.

namespace mlbench {
namespace {

using core::GmmExperiment;
using core::RunResult;

GmmExperiment SmallGmm(bool super) {
  GmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 4;
  exp.dim = 3;
  exp.k = 2;
  exp.super_vertex = super;
  exp.config.data.logical_per_machine = 1e6;
  exp.config.data.actual_per_machine = 300;
  exp.config.seed = 77;
  return exp;
}

using GmmRunner = RunResult (*)(const GmmExperiment&, models::GmmParams*);

// Pre-PR observables of SmallGmm on each platform, printed with %.17g from
// the seed build. mu0 = model.mu[0].raw()[0], pi0 = model.pi.raw()[0].
struct Golden {
  const char* name;
  GmmRunner runner;
  bool super;
  double init;
  double peak;
  double iters[4];
  double mu0;
  double pi0;
};

const Golden kGoldens[] = {
    {"giraph", &core::RunGmmBsp, false, 16.73562174935179, 1430211200.0000007,
     {41.765566415849548, 41.765567602644253, 41.765567602644253,
      41.765567602644268},
     -0.79686415166375557, 0.10336747898061455},
    {"graphlab", &core::RunGmmGas, true, 6.7050048877350097, 34013440.0,
     {8.1195056513384198, 8.1195056513384198, 8.1195056513384181,
      8.1195056513384216},
     0.26709327059580035, 0.67997777299212148},
    {"spark", &core::RunGmmDataflow, false, 26.321320719401044,
     1294561033.6000004,
     {42.018778950825968, 42.018778950825983, 42.018778950825975,
      42.018778950825947},
     0.6880815659937719, 0.49444170050557851},
    {"simsql", &core::RunGmmRelDb, false, 155.98804154590226, 0.0,
     {309.81882168808448, 309.81882168808437, 309.81882168808443,
      309.8188216880842},
     0.024927191082141829, 0.8244399992290683},
};

class FaultFreeParity : public ::testing::TestWithParam<Golden> {
 protected:
  void TearDown() override { exec::ThreadPool::SetGlobalThreads(1); }
};

TEST_P(FaultFreeParity, BitIdenticalToPrePrAtAnyThreadCount) {
  const Golden& g = GetParam();
  GmmExperiment exp = SmallGmm(g.super);
  ASSERT_FALSE(exp.config.faults.Enabled())
      << "default config must leave fault injection off";

  for (int threads : {1, 4}) {
    exec::ThreadPool::SetGlobalThreads(threads);
    models::GmmParams model;
    RunResult r = g.runner(exp, &model);
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_EQ(r.init_seconds, g.init) << "threads " << threads;
    EXPECT_EQ(r.peak_machine_bytes, g.peak) << "threads " << threads;
    ASSERT_EQ(r.iteration_seconds.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(r.iteration_seconds[i], g.iters[i])
          << "iter " << i << " threads " << threads;
    }
    EXPECT_EQ(model.mu[0].raw()[0], g.mu0) << "threads " << threads;
    EXPECT_EQ(model.pi.raw()[0], g.pi0) << "threads " << threads;
    EXPECT_EQ(r.recovery_events, 0);
    EXPECT_EQ(r.recovery_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, FaultFreeParity,
                         ::testing::ValuesIn(kGoldens),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---- Seeded faults: thread-count invariance ---------------------------------

void ExpectSameRun(const RunResult& a, const RunResult& b) {
  ASSERT_TRUE(a.ok()) << a.status.ToString();
  ASSERT_TRUE(b.ok()) << b.status.ToString();
  EXPECT_EQ(a.init_seconds, b.init_seconds);
  ASSERT_EQ(a.iteration_seconds.size(), b.iteration_seconds.size());
  for (std::size_t i = 0; i < a.iteration_seconds.size(); ++i) {
    EXPECT_EQ(a.iteration_seconds[i], b.iteration_seconds[i]) << "iter " << i;
  }
  EXPECT_EQ(a.peak_machine_bytes, b.peak_machine_bytes);
  EXPECT_EQ(a.recovery_events, b.recovery_events);
  EXPECT_EQ(a.recovery_seconds, b.recovery_seconds);
}

void ExpectSameModel(const models::GmmParams& a, const models::GmmParams& b) {
  EXPECT_EQ(a.pi.raw(), b.pi.raw());
  ASSERT_EQ(a.mu.size(), b.mu.size());
  for (std::size_t k = 0; k < a.mu.size(); ++k) {
    EXPECT_EQ(a.mu[k].raw(), b.mu[k].raw()) << "mu " << k;
  }
}

GmmExperiment FaultyGmm(bool super) {
  GmmExperiment exp = SmallGmm(super);
  exp.config.faults.seed = 99;
  exp.config.faults.rates.crash = 0.08;
  exp.config.faults.rates.straggler = 0.05;
  exp.config.faults.rates.straggler_factor = 1.6;
  exp.config.faults.rates.send_failure = 0.05;
  // Keep checkpoint/snapshot machinery on so its charges are covered too.
  exp.config.faults.checkpoint_interval = 2;
  exp.config.faults.snapshot_interval = 2;
  return exp;
}

class SeededFaultInvariance : public ::testing::TestWithParam<Golden> {
 protected:
  void TearDown() override { exec::ThreadPool::SetGlobalThreads(1); }
};

TEST_P(SeededFaultInvariance, SameSeedSameRecoveryAtAnyThreadCount) {
  const Golden& g = GetParam();
  GmmExperiment exp = FaultyGmm(g.super);
  ASSERT_TRUE(exp.config.faults.Enabled());

  exec::ThreadPool::SetGlobalThreads(1);
  models::GmmParams model1;
  RunResult r1 = g.runner(exp, &model1);

  exec::ThreadPool::SetGlobalThreads(4);
  models::GmmParams model4;
  RunResult r4 = g.runner(exp, &model4);

  ExpectSameRun(r1, r4);
  ExpectSameModel(model1, model4);

  // Recovery never perturbs the algorithm: model bits match the fault-free
  // goldens even though the clock charges differ.
  EXPECT_EQ(model1.mu[0].raw()[0], g.mu0);
  EXPECT_EQ(model1.pi.raw()[0], g.pi0);
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, SeededFaultInvariance,
                         ::testing::ValuesIn(kGoldens),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(SeededFaultInvariance, SomePlatformObservesRecoveries) {
  // At these rates the four platforms together must hit at least one
  // recoverable fault; otherwise the invariance suite proves nothing.
  int total_events = 0;
  double total_seconds = 0;
  for (const Golden& g : kGoldens) {
    GmmExperiment exp = FaultyGmm(g.super);
    models::GmmParams model;
    RunResult r = g.runner(exp, &model);
    ASSERT_TRUE(r.ok()) << g.name << ": " << r.status.ToString();
    total_events += r.recovery_events;
    total_seconds += r.recovery_seconds;
  }
  EXPECT_GT(total_events, 0);
  EXPECT_GT(total_seconds, 0.0);
}

TEST(SeededFaultInvariance, DifferentSeedsGiveDifferentSchedules) {
  GmmExperiment a = FaultyGmm(false);
  GmmExperiment b = FaultyGmm(false);
  b.config.faults.seed = 100;
  models::GmmParams ma, mb;
  RunResult ra = core::RunGmmBsp(a, &ma);
  RunResult rb = core::RunGmmBsp(b, &mb);
  ASSERT_TRUE(ra.ok()) << ra.status.ToString();
  ASSERT_TRUE(rb.ok()) << rb.status.ToString();
  // Timing differs (different fault schedule); model bits do not.
  EXPECT_EQ(ma.mu[0].raw()[0], mb.mu[0].raw()[0]);
  bool any_diff = ra.recovery_events != rb.recovery_events ||
                  ra.recovery_seconds != rb.recovery_seconds;
  for (std::size_t i = 0; i < ra.iteration_seconds.size(); ++i) {
    if (ra.iteration_seconds[i] != rb.iteration_seconds[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "seeds 99 and 100 produced identical schedules";
}

}  // namespace
}  // namespace mlbench
