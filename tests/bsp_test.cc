#include <gtest/gtest.h>

#include "bsp/engine.h"
#include "sim/cluster_sim.h"

namespace mlbench::bsp {
namespace {

struct VData {
  double value = 0;
  double received = 0;
};

using Engine = BspEngine<VData, double>;

// n data vertices (ids 1..n) + one hub (id 0).
void BuildStar(Engine& eng, int n, double data_scale,
               double state_bytes = 64) {
  eng.AddVertex(0, VData{0, 0}, 1.0, 1024);
  for (int i = 1; i <= n; ++i) {
    eng.AddVertex(i, VData{static_cast<double>(i), 0}, data_scale,
                  state_bytes);
  }
}

TEST(BspEngineTest, BootChargesJobLaunchAndPinsState) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(3));
  Engine eng(&sim);
  BuildStar(eng, 10, 1.0);
  ASSERT_TRUE(eng.Boot().ok());
  EXPECT_GE(sim.elapsed_seconds(), eng.costs().job_launch_s);
  double used = 0;
  for (int m = 0; m < 3; ++m) used += sim.used_bytes(m);
  EXPECT_GT(used, 2 * eng.costs().peer_buffer_bytes);  // peers + graph
  eng.Shutdown();
  used = 0;
  for (int m = 0; m < 3; ++m) used += sim.used_bytes(m);
  EXPECT_DOUBLE_EQ(used, 0.0);
}

TEST(BspEngineTest, MessagesDeliverNextSuperstep) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Engine eng(&sim);
  BuildStar(eng, 4, 1.0);
  ASSERT_TRUE(eng.Boot().ok());

  // Superstep 0: every data vertex sends its value to the hub.
  auto send = [](Engine::Vertex& v, const std::vector<double>&,
                 Engine::Context& ctx) {
    if (v.id != 0) ctx.Send(0, v.data.value, 8);
  };
  ASSERT_TRUE(eng.RunSuperstep(send, {}).ok());

  // Superstep 1: the hub sums its inbox.
  auto recv = [](Engine::Vertex& v, const std::vector<double>& inbox,
                 Engine::Context&) {
    if (v.id == 0) {
      for (double m : inbox) v.data.received += m;
    }
  };
  ASSERT_TRUE(eng.RunSuperstep(recv, {}).ok());
  EXPECT_DOUBLE_EQ(eng.vertex(0).data.received, 1 + 2 + 3 + 4);
  EXPECT_EQ(eng.superstep(), 2);
}

TEST(BspEngineTest, CombinerFoldsPerMachine) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Engine eng(&sim);
  BuildStar(eng, 8, 1.0);
  eng.SetCombiner([](const double& a, const double& b) { return a + b; });
  ASSERT_TRUE(eng.Boot().ok());
  auto send = [](Engine::Vertex& v, const std::vector<double>&,
                 Engine::Context& ctx) {
    if (v.id != 0) ctx.Send(0, v.data.value, 8);
  };
  ASSERT_TRUE(eng.RunSuperstep(send, {}).ok());
  double sum = 0;
  int arrivals = 0;
  auto recv = [&](Engine::Vertex& v, const std::vector<double>& inbox,
                  Engine::Context&) {
    if (v.id == 0) {
      for (double m : inbox) {
        sum += m;
        ++arrivals;
      }
    }
  };
  ASSERT_TRUE(eng.RunSuperstep(recv, {}).ok());
  EXPECT_DOUBLE_EQ(sum, 36.0);
  // At most one combined message per machine.
  EXPECT_LE(arrivals, 2);
}

TEST(BspEngineTest, AggregatorsSumAndBroadcast) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Engine eng(&sim);
  BuildStar(eng, 3, 1.0);
  ASSERT_TRUE(eng.Boot().ok());
  auto contribute = [](Engine::Vertex& v, const std::vector<double>&,
                       Engine::Context& ctx) {
    if (v.id != 0) ctx.Aggregate("total", {v.data.value, 1.0}, 16);
  };
  ASSERT_TRUE(eng.RunSuperstep(contribute, {}).ok());
  std::vector<double> seen;
  auto read = [&](Engine::Vertex& v, const std::vector<double>&,
                  Engine::Context& ctx) {
    if (v.id == 0) seen = ctx.GetAggregate("total");
  };
  ASSERT_TRUE(eng.RunSuperstep(read, {}).ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], 6.0);
  EXPECT_DOUBLE_EQ(seen[1], 3.0);
}

TEST(BspEngineTest, ScaledVerticesScaleAggregates) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Engine eng(&sim);
  BuildStar(eng, 2, /*data_scale=*/1000.0);
  ASSERT_TRUE(eng.Boot().ok());
  auto contribute = [](Engine::Vertex& v, const std::vector<double>&,
                       Engine::Context& ctx) {
    if (v.id != 0) ctx.Aggregate("n", {1.0}, 8);
  };
  ASSERT_TRUE(eng.RunSuperstep(contribute, {}).ok());
  std::vector<double> n;
  auto read = [&](Engine::Vertex& v, const std::vector<double>&,
                  Engine::Context& ctx) {
    if (v.id == 0) n = ctx.GetAggregate("n");
  };
  ASSERT_TRUE(eng.RunSuperstep(read, {}).ok());
  ASSERT_EQ(n.size(), 1u);
  EXPECT_DOUBLE_EQ(n[0], 2000.0);  // logical vertex count
}

TEST(BspEngineTest, UncombinedMessageFloodExceedsMemory) {
  // 10M logical senders each buffering a 9 KB model message at receivers.
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Engine eng(&sim);
  BuildStar(eng, 20, /*data_scale=*/1e6);
  ASSERT_TRUE(eng.Boot().ok());
  auto flood = [](Engine::Vertex& v, const std::vector<double>&,
                  Engine::Context& ctx) {
    if (v.id == 0) return;
    // Each logical data vertex receives a 9 KB message (sent to itself
    // here to spread destinations).
    ctx.Send(v.id, 1.0, 9000);
  };
  ASSERT_TRUE(eng.RunSuperstep(flood, {}).ok());
  Status st = eng.RunSuperstep(flood, {});
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
}

TEST(BspEngineTest, OutOfCoreMessagingSurvivesTheFloodButPaysDiskTime) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Engine eng(&sim);
  BuildStar(eng, 20, /*data_scale=*/1e6);
  eng.SetOutOfCoreMessages(true);
  ASSERT_TRUE(eng.Boot().ok());
  auto flood = [](Engine::Vertex& v, const std::vector<double>&,
                  Engine::Context& ctx) {
    if (v.id != 0) ctx.Send(v.id, 1.0, 9000);
  };
  ASSERT_TRUE(eng.RunSuperstep(flood, {}).ok());
  double t0 = sim.elapsed_seconds();
  ASSERT_TRUE(eng.RunSuperstep(flood, {}).ok());
  // 10M x 9KB = 90 GB per machine written + read back: minutes of disk.
  EXPECT_GT(sim.elapsed_seconds() - t0, 300.0);
}

TEST(BspEngineTest, OutOfCoreSpillIsCappedByDisk) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Engine eng(&sim);
  BuildStar(eng, 20, /*data_scale=*/1e6);
  eng.SetOutOfCoreMessages(true);
  ASSERT_TRUE(eng.Boot().ok());
  auto flood = [](Engine::Vertex& v, const std::vector<double>&,
                  Engine::Context& ctx) {
    if (v.id != 0) ctx.Send(v.id, 1.0, 8e6);  // 8 MB per logical vertex
  };
  ASSERT_TRUE(eng.RunSuperstep(flood, {}).ok());
  Status st = eng.RunSuperstep(flood, {});
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
}

TEST(BspEngineTest, AllocationChurnKillsTheWorker) {
  // The naive Bayesian Lasso: every logical data vertex allocates an 8 MB
  // Gram-matrix message -> 800 GB of garbage per superstep per machine.
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Engine eng(&sim);
  BuildStar(eng, 10, /*data_scale=*/1e5);
  ASSERT_TRUE(eng.Boot().ok());
  ComputeCost cost;
  cost.temp_bytes_per_vertex = 8e6;
  auto noop = [](Engine::Vertex&, const std::vector<double>&,
                 Engine::Context&) {};
  Status st = eng.RunSuperstep(noop, cost);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_NE(st.message().find("churn"), std::string::npos);
}

TEST(BspEngineTest, PeerBuffersGrowWithClusterSize) {
  auto boot_used = [](int machines) {
    sim::ClusterSim sim(sim::Ec2M2XLargeCluster(machines));
    Engine eng(&sim);
    eng.AddVertex(0, VData{}, 1.0, 64);
    EXPECT_TRUE(eng.Boot().ok());
    // Peer buffers dominate: measure machine 1 (graph is on one machine).
    return sim.used_bytes(1);
  };
  EXPECT_GT(boot_used(50), 5 * boot_used(5));
}

TEST(BspEngineTest, SuperstepBarrierAdvancesClock) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Engine eng(&sim);
  BuildStar(eng, 2, 1.0);
  ASSERT_TRUE(eng.Boot().ok());
  double t0 = sim.elapsed_seconds();
  auto noop = [](Engine::Vertex&, const std::vector<double>&,
                 Engine::Context&) {};
  ASSERT_TRUE(eng.RunSuperstep(noop, {}).ok());
  EXPECT_GE(sim.elapsed_seconds() - t0, eng.costs().superstep_barrier_s);
}

}  // namespace
}  // namespace mlbench::bsp
