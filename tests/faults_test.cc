#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/charge_ledger.h"
#include "sim/cluster_sim.h"
#include "sim/faults.h"
#include "sim/machine.h"

// Unit tests for the fault-injection core (DESIGN.md §12): the purity and
// determinism of FaultPlan queries, RetryPolicy arithmetic, and the
// ClusterSim hooks engines use to charge recovery (phase scaling, mirrored
// speculative work, soft ledger allocations).

namespace mlbench {
namespace {

// ---- FaultPlan -------------------------------------------------------------

TEST(FaultPlanTest, EmptyPlanReportsEmptyAndInjectorInactive) {
  sim::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.CrashCountAt(0, 0), 0);
  EXPECT_DOUBLE_EQ(plan.StragglerFactorAt(3, 1), 1.0);
  EXPECT_EQ(plan.SendFailureCountAt(7, 2), 0);

  sim::FaultInjector inj(plan, sim::RetryPolicy{});
  EXPECT_FALSE(inj.active());

  // Seeded with all-zero rates is still empty: engines skip fault logic.
  sim::FaultPlan zero = sim::FaultPlan::Seeded(99, sim::FaultRates{});
  EXPECT_TRUE(zero.empty());
}

TEST(FaultPlanTest, SeededQueriesArePureFunctions) {
  sim::FaultRates rates;
  rates.crash = 0.2;
  rates.straggler = 0.3;
  rates.straggler_factor = 1.7;
  rates.send_failure = 0.25;
  sim::FaultPlan a = sim::FaultPlan::Seeded(42, rates);
  sim::FaultPlan b = sim::FaultPlan::Seeded(42, rates);
  for (std::int64_t unit = 0; unit < 64; ++unit) {
    for (int m = 0; m < 4; ++m) {
      // Identical across instances and across repeated queries.
      EXPECT_EQ(a.CrashCountAt(unit, m), b.CrashCountAt(unit, m));
      EXPECT_EQ(a.CrashCountAt(unit, m), a.CrashCountAt(unit, m));
      EXPECT_EQ(a.StragglerFactorAt(unit, m), b.StragglerFactorAt(unit, m));
      EXPECT_EQ(a.SendFailureCountAt(unit, m), b.SendFailureCountAt(unit, m));
    }
  }
}

TEST(FaultPlanTest, SeedsAndCoordinatesDecorrelate) {
  sim::FaultRates rates;
  rates.crash = 0.3;
  sim::FaultPlan a = sim::FaultPlan::Seeded(1, rates);
  sim::FaultPlan b = sim::FaultPlan::Seeded(2, rates);
  int diff = 0;
  int hits_a = 0;
  for (std::int64_t unit = 0; unit < 256; ++unit) {
    if (a.CrashCountAt(unit, 0) != b.CrashCountAt(unit, 0)) ++diff;
    if (a.CrashCountAt(unit, 0) > 0) ++hits_a;
  }
  EXPECT_GT(diff, 0) << "different seeds must give different schedules";
  // A 0.3 rate over 256 units: roughly 77 expected hits; loose bounds.
  EXPECT_GT(hits_a, 30);
  EXPECT_LT(hits_a, 160);
}

TEST(FaultPlanTest, ExplicitFaultsOverrideSeededSchedule) {
  sim::FaultRates rates;
  rates.crash = 0.0;
  sim::FaultPlan plan = sim::FaultPlan::Seeded(7, rates);
  plan.AddCrash(3, 1, 2);
  plan.AddStraggler(4, 0, 3.5);
  plan.AddSendFailure(5, 2, 9);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.CrashCountAt(3, 1), 2);
  EXPECT_EQ(plan.CrashCountAt(3, 0), 0);
  EXPECT_DOUBLE_EQ(plan.StragglerFactorAt(4, 0), 3.5);
  EXPECT_EQ(plan.SendFailureCountAt(5, 2), 9);
}

// ---- RetryPolicy -----------------------------------------------------------

TEST(RetryPolicyTest, BackoffIsGeometricSeries) {
  sim::RetryPolicy retry;  // base 1.0, multiplier 2.0, max_retries 3
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(0), 0.0);
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(1), 1.0);
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(2), 3.0);
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(3), 7.0);
  EXPECT_FALSE(retry.Exhausted(3));
  EXPECT_TRUE(retry.Exhausted(4));

  sim::RetryPolicy slow{/*max_retries=*/1, /*base_backoff_s=*/0.5,
                        /*backoff_multiplier=*/3.0};
  EXPECT_DOUBLE_EQ(slow.BackoffSeconds(2), 0.5 + 1.5);
  EXPECT_TRUE(slow.Exhausted(2));
}

// ---- FaultSpec -------------------------------------------------------------

TEST(FaultSpecTest, DisabledSpecMakesNoInjector) {
  sim::FaultSpec spec;
  EXPECT_FALSE(spec.Enabled());
  EXPECT_EQ(spec.MakeInjector(), nullptr);

  spec.rates.crash = 0.1;
  EXPECT_TRUE(spec.Enabled());
  auto inj = spec.MakeInjector();
  ASSERT_NE(inj, nullptr);
  EXPECT_TRUE(inj->active());
}

TEST(FaultSpecTest, ExplicitPlanWinsWhenRequested) {
  sim::FaultSpec spec;
  spec.use_explicit_plan = true;
  spec.explicit_plan.AddCrash(0, 0, 1);
  ASSERT_TRUE(spec.Enabled());
  auto inj = spec.MakeInjector();
  ASSERT_NE(inj, nullptr);
  EXPECT_EQ(inj->plan().CrashCountAt(0, 0), 1);
  EXPECT_EQ(inj->plan().CrashCountAt(1, 0), 0);
}

// ---- ClusterSim fault hooks ------------------------------------------------

TEST(SimFaultHooksTest, ScalePhaseCpuMultipliesOnlyThatMachine) {
  sim::ClusterSim plain(sim::Ec2M2XLargeCluster(2));
  plain.BeginPhase("p");
  plain.ChargeCpu(0, 2.0);
  plain.ChargeCpu(1, 3.0);
  double base = plain.EndPhase();
  EXPECT_DOUBLE_EQ(base, 3.0);

  sim::ClusterSim scaled(sim::Ec2M2XLargeCluster(2));
  scaled.BeginPhase("p");
  scaled.ScalePhaseCpu(0, 2.0);  // machine 0: 2.0 * 2 = 4.0 > 3.0
  scaled.ChargeCpu(0, 2.0);
  scaled.ChargeCpu(1, 3.0);
  EXPECT_DOUBLE_EQ(scaled.EndPhase(), 4.0);

  // The adjustment does not leak into the next phase.
  scaled.BeginPhase("q");
  scaled.ChargeCpu(0, 2.0);
  scaled.ChargeCpu(1, 3.0);
  EXPECT_DOUBLE_EQ(scaled.EndPhase(), base);
}

TEST(SimFaultHooksTest, MirrorPhaseCpuAddsSpeculativeCopy) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  sim.BeginPhase("p");
  sim.MirrorPhaseCpu(0, 1, 1.0);  // a full backup of machine 0's work on 1
  sim.ChargeCpu(0, 2.0);
  sim.ChargeCpu(1, 1.0);
  // Machine 1 now carries 1.0 + 2.0 = 3.0.
  EXPECT_DOUBLE_EQ(sim.EndPhase(), 3.0);
}

TEST(SimFaultHooksTest, ScalePhaseNetMultipliesNetworkBytes) {
  sim::ClusterSpec spec = sim::Ec2M2XLargeCluster(2);
  sim::ClusterSim sim(spec);
  sim.BeginPhase("p");
  sim.ScalePhaseNet(0, 3.0);
  sim.ChargeNetwork(0, 1e8);
  double wall = sim.EndPhase();
  sim.BeginPhase("q");
  sim.ChargeNetwork(0, 3e8);
  EXPECT_DOUBLE_EQ(sim.EndPhase(), wall);
}

TEST(SimFaultHooksTest, SetFaultInjectorIsVisibleToEngines) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(1));
  EXPECT_EQ(sim.faults(), nullptr);
  sim::FaultSpec spec;
  spec.rates.straggler = 0.5;
  sim.SetFaultInjector(spec.MakeInjector());
  ASSERT_NE(sim.faults(), nullptr);
  EXPECT_TRUE(sim.faults()->active());
}

// ---- Soft ledger allocations ----------------------------------------------

TEST(SoftAllocTest, SoftOpFailureSkipsAndReportsInsteadOfAborting) {
  sim::ClusterSpec spec = sim::Ec2M2XLargeCluster(1);
  spec.machine.ram_bytes = 1.0e9;
  sim::ClusterSim sim(spec);
  sim.BeginPhase("p");

  sim::ChargeLedger ledger;
  {
    sim::ScopedLedger bind(&ledger);
    ASSERT_TRUE(sim.Allocate(0, 6.0e8, "pinned").ok());
    ASSERT_TRUE(sim.AllocateSoft(0, 6.0e8, "cache", /*tag=*/41).ok());
    sim.ChargeCpu(0, 1.0);  // must survive the soft failure
  }
  std::vector<std::int64_t> failed_tags;
  Status st = sim.CommitLedger(
      ledger, /*on_transient=*/nullptr,
      [&](std::int64_t tag, int machine, double bytes) {
        failed_tags.push_back(tag);
        EXPECT_EQ(machine, 0);
        EXPECT_DOUBLE_EQ(bytes, 6.0e8);
      });
  EXPECT_TRUE(st.ok()) << st.ToString();  // soft failure is not an error
  ASSERT_EQ(failed_tags.size(), 1u);
  EXPECT_EQ(failed_tags[0], 41);
  EXPECT_DOUBLE_EQ(sim.used_bytes(0), 6.0e8);  // only the hard alloc landed
  EXPECT_DOUBLE_EQ(sim.EndPhase(), 1.0);       // trailing charge replayed
}

TEST(SoftAllocTest, SoftOpSucceedsWhenMemoryFits) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(1));
  sim.BeginPhase("p");
  sim::ChargeLedger ledger;
  {
    sim::ScopedLedger bind(&ledger);
    ASSERT_TRUE(sim.AllocateSoft(0, 1.0e6, "cache", /*tag=*/7).ok());
  }
  bool fail_called = false;
  Status st = sim.CommitLedger(ledger, nullptr,
                               [&](std::int64_t, int, double) {
                                 fail_called = true;
                               });
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(fail_called);
  EXPECT_DOUBLE_EQ(sim.used_bytes(0), 1.0e6);
  sim.EndPhase();
}

TEST(SoftAllocTest, UnboundSoftAllocFallsBackToHardAllocate) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(1));
  sim.BeginPhase("p");
  ASSERT_TRUE(sim.AllocateSoft(0, 2.0e6, "cache", /*tag=*/1).ok());
  EXPECT_DOUBLE_EQ(sim.used_bytes(0), 2.0e6);
  sim.EndPhase();
}

}  // namespace
}  // namespace mlbench
