#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "server/protocol.h"

namespace mlbench {
namespace {

using server::AppendFrame;
using server::DecodeFrame;
using server::ErrorMsg;
using server::ExperimentRequest;
using server::Frame;
using server::MsgType;
using server::ProgressMsg;
using server::ResultMsg;
using server::SqlRequest;

std::uint64_t Bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// ---- Framing ---------------------------------------------------------------

TEST(FrameTest, RoundtripsTypeAndPayload) {
  std::string buf;
  AppendFrame(&buf, MsgType::kExperiment, "workload=gmm\n");
  AppendFrame(&buf, MsgType::kPong, "");
  Frame f;
  auto n1 = DecodeFrame(buf, &f);
  ASSERT_TRUE(n1.ok());
  EXPECT_EQ(f.type, MsgType::kExperiment);
  EXPECT_EQ(f.payload, "workload=gmm\n");
  auto n2 = DecodeFrame(std::string_view(buf).substr(*n1), &f);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(f.type, MsgType::kPong);
  EXPECT_EQ(f.payload, "");
  EXPECT_EQ(*n1 + *n2, buf.size());
}

TEST(FrameTest, IncompleteBufferAsksForMoreBytes) {
  std::string buf;
  AppendFrame(&buf, MsgType::kSql, "sql body here");
  Frame f;
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    auto n = DecodeFrame(std::string_view(buf).substr(0, cut), &f);
    ASSERT_TRUE(n.ok()) << "cut=" << cut;
    EXPECT_EQ(*n, 0u) << "cut=" << cut;  // 0 = incomplete, keep reading
  }
}

TEST(FrameTest, OversizedLengthIsMalformed) {
  // Hand-craft a header whose length word exceeds the frame ceiling.
  std::uint32_t len = server::kMaxFrameBytes + 1;
  std::string buf(reinterpret_cast<const char*>(&len), 4);
  buf.push_back(static_cast<char>(MsgType::kPing));
  Frame f;
  auto n = DecodeFrame(buf, &f);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, ZeroLengthIsMalformed) {
  // A frame must at least carry its type byte.
  std::string buf(5, '\0');
  Frame f;
  auto n = DecodeFrame(buf, &f);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, UnknownTypeByteIsMalformed) {
  std::uint32_t len = 1;
  std::string buf(reinterpret_cast<const char*>(&len), 4);
  buf.push_back(static_cast<char>(99));
  Frame f;
  auto n = DecodeFrame(buf, &f);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(server::KnownMsgType(99));
  EXPECT_TRUE(server::KnownMsgType(
      static_cast<std::uint8_t>(MsgType::kResult)));
}

// ---- Message payloads ------------------------------------------------------

TEST(ProtocolTest, ExperimentRequestRoundtrip) {
  ExperimentRequest req;
  req.id = 0xdeadbeefcafeULL;
  req.workload = "imputation";
  req.platform = "reldb";
  req.machines = 7;
  req.iterations = 4;
  req.seed = 123456789;
  req.actual_per_machine = 250;
  req.deadline_ms = 1500;
  req.want_progress = true;
  auto back = server::ParseExperimentRequest(
      server::EncodeExperimentRequest(req));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, req.id);
  EXPECT_EQ(back->workload, req.workload);
  EXPECT_EQ(back->platform, req.platform);
  EXPECT_EQ(back->machines, req.machines);
  EXPECT_EQ(back->iterations, req.iterations);
  EXPECT_EQ(back->seed, req.seed);
  EXPECT_EQ(back->actual_per_machine, req.actual_per_machine);
  EXPECT_EQ(back->deadline_ms, req.deadline_ms);
  EXPECT_EQ(back->want_progress, req.want_progress);
}

TEST(ProtocolTest, SqlRequestCarriesMultilineBody) {
  SqlRequest req;
  req.id = 42;
  req.seed = 7;
  req.rows = 96;
  req.deadline_ms = 0;
  req.sql = "SELECT grp, AVG(val)\nFROM data\nGROUP BY grp";
  auto back = server::ParseSqlRequest(server::EncodeSqlRequest(req));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, req.id);
  EXPECT_EQ(back->seed, req.seed);
  EXPECT_EQ(back->rows, req.rows);
  EXPECT_EQ(back->sql, req.sql) << "body must survive newlines verbatim";
}

TEST(ProtocolTest, ResultDoublesRoundtripBitExactly) {
  // The determinism acceptance check hashes these exact bits, so the wire
  // encoding must preserve them for every double, not just pretty ones.
  const double uglies[] = {
      0.1,
      -0.0,
      1.0 / 3.0,
      5e-324,                                   // smallest denormal
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::epsilon(),
      123456.789e-30,
  };
  ResultMsg msg;
  msg.id = 9;
  msg.code = StatusCode::kOk;
  msg.message = "ok";
  msg.init_seconds = uglies[0];
  for (double d : uglies) msg.iteration_seconds.push_back(d);
  msg.peak_machine_bytes = uglies[4];
  msg.digest = 0xcbf29ce484222325ULL;
  msg.result_rows = 3;
  msg.queue_ms = uglies[2];
  auto back = server::ParseResult(server::EncodeResult(msg));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(Bits(back->init_seconds), Bits(msg.init_seconds));
  ASSERT_EQ(back->iteration_seconds.size(), msg.iteration_seconds.size());
  for (std::size_t i = 0; i < msg.iteration_seconds.size(); ++i) {
    EXPECT_EQ(Bits(back->iteration_seconds[i]),
              Bits(msg.iteration_seconds[i]))
        << "iteration " << i;
  }
  EXPECT_EQ(Bits(back->peak_machine_bytes), Bits(msg.peak_machine_bytes));
  EXPECT_EQ(back->digest, msg.digest);
  EXPECT_EQ(back->result_rows, msg.result_rows);
  EXPECT_EQ(back->code, StatusCode::kOk);
}

TEST(ProtocolTest, ProgressAndErrorRoundtrip) {
  ProgressMsg p{/*id=*/5, /*iteration=*/2, /*total=*/10};
  auto pb = server::ParseProgress(server::EncodeProgress(p));
  ASSERT_TRUE(pb.ok());
  EXPECT_EQ(pb->id, 5u);
  EXPECT_EQ(pb->iteration, 2);
  EXPECT_EQ(pb->total, 10);

  ErrorMsg e;
  e.id = 6;
  e.code = StatusCode::kResourceExhausted;
  e.message = "queue full: shed";
  auto eb = server::ParseError(server::EncodeError(e));
  ASSERT_TRUE(eb.ok());
  EXPECT_EQ(eb->id, 6u);
  EXPECT_EQ(eb->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(eb->message, e.message);
}

TEST(ProtocolTest, UnknownKeysAreIgnoredForForwardCompat) {
  ExperimentRequest req;
  req.workload = "gmm";
  req.platform = "gas";
  std::string payload = server::EncodeExperimentRequest(req);
  payload.insert(0, "some_future_knob=17\n");
  auto back = server::ParseExperimentRequest(payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->workload, "gmm");
  EXPECT_EQ(back->platform, "gas");
}

TEST(ProtocolTest, MissingKeysFallBackToDefaults) {
  auto back = server::ParseExperimentRequest("workload=lda\nplatform=bsp\n");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->machines, 5);
  EXPECT_EQ(back->iterations, 3);
  EXPECT_EQ(back->seed, 2014u);
  EXPECT_EQ(back->actual_per_machine, 0);
  EXPECT_FALSE(back->want_progress);
}

}  // namespace
}  // namespace mlbench
