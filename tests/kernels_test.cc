// Parity suite for the hot-path kernel library (src/kernels/): every fused
// or batched kernel is checked against the reference path it replaced.
// Draw-path kernels must match *bit-for-bit*, including RNG consumption
// (verified by comparing the next raw u64 from both streams); batched
// density kernels carry a 1e-12 contract because their constant hoisting
// reassociates the arithmetic.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/categorical.h"
#include "kernels/emission.h"
#include "kernels/gaussian.h"
#include "kernels/hmm_forward.h"
#include "kernels/lda_token.h"
#include "linalg/blocked.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "models/collapsed_lda.h"
#include "models/gmm.h"
#include "models/hmm.h"
#include "models/lda.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace mlbench {
namespace {

using kernels::CategoricalScratch;
using kernels::CollapsedCounts;
using kernels::FusedCategorical;
using kernels::SampleFromCumulative;
using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------------------
// Fused categorical draw
// ---------------------------------------------------------------------------

TEST(FusedCategoricalTest, MatchesTwoPassSampleCategorical) {
  stats::Rng weight_rng(11);
  stats::Rng naive(42), fused(42);
  CategoricalScratch scratch;
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t n = 1 + weight_rng.NextBounded(64);
    std::vector<double> w(n);
    for (auto& v : w) v = weight_rng.NextDouble() + 1e-6;
    std::size_t a = stats::SampleCategorical(naive, w);
    std::size_t b = FusedCategorical(fused, n, &scratch,
                                     [&](std::size_t i) { return w[i]; });
    ASSERT_EQ(a, b);
  }
  // Both streams consumed exactly one double per draw.
  EXPECT_EQ(naive.NextU64(), fused.NextU64());
}

TEST(FusedCategoricalTest, CumulativeSamplerMatchesNaiveScan) {
  stats::Rng u_rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t n = 1 + u_rng.NextBounded(32);
    std::vector<double> cum(n);
    double acc = 0;
    for (auto& c : cum) {
      acc += u_rng.NextDouble();
      c = acc;
    }
    stats::Rng r1(trial), r2(trial);
    // Naive reference: first index whose running total exceeds u.
    double u = r1.NextDouble() * cum[n - 1];
    std::size_t want = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (u < cum[i]) {
        want = i;
        break;
      }
    }
    EXPECT_EQ(SampleFromCumulative(r2, cum.data(), n), want);
  }
}

// ---------------------------------------------------------------------------
// GMM fused membership
// ---------------------------------------------------------------------------

models::GmmParams MakeGmmParams(std::size_t k, std::size_t dim,
                                std::uint64_t seed) {
  stats::Rng rng(seed);
  models::GmmParams p;
  p.pi = Vector(k);
  for (std::size_t c = 0; c < k; ++c) {
    p.pi[c] = rng.NextDouble() + 0.1;
    Vector mu(dim);
    for (auto& v : mu) v = 4.0 * (rng.NextDouble() - 0.5);
    p.mu.push_back(std::move(mu));
    // Diagonally dominant SPD covariance.
    Matrix s(dim, dim);
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        double v = 0.1 * (rng.NextDouble() - 0.5);
        s(i, j) = v;
        s(j, i) = v;
      }
      s(i, i) = 1.0 + rng.NextDouble();
    }
    p.sigma.push_back(std::move(s));
  }
  return p;
}

TEST(GmmKernelTest, FusedSampleMatchesTwoPassReference) {
  const std::size_t k = 7, dim = 5;
  auto params = MakeGmmParams(k, dim, 21);
  auto sampler = models::GmmMembershipSampler::Build(params);
  ASSERT_TRUE(sampler.ok());
  stats::Rng data_rng(3);
  stats::Rng naive(99), fused(99);
  models::GmmMembershipSampler::Scratch scratch;
  for (int trial = 0; trial < 300; ++trial) {
    Vector x(dim);
    for (auto& v : x) v = 8.0 * (data_rng.NextDouble() - 0.5);
    std::size_t a = sampler->Sample(naive, x);
    std::size_t b = sampler->Sample(fused, x, &scratch);
    ASSERT_EQ(a, b);
  }
  EXPECT_EQ(naive.NextU64(), fused.NextU64());
}

TEST(GmmKernelTest, SampleBlockMatchesPerPointDraws) {
  const std::size_t k = 4, dim = 3;
  auto params = MakeGmmParams(k, dim, 5);
  auto sampler = models::GmmMembershipSampler::Build(params);
  ASSERT_TRUE(sampler.ok());
  stats::Rng data_rng(8);
  std::vector<Vector> points;
  for (int i = 0; i < 64; ++i) {
    Vector x(dim);
    for (auto& v : x) v = 6.0 * (data_rng.NextDouble() - 0.5);
    points.push_back(std::move(x));
  }
  stats::Rng r1(17), r2(17);
  models::GmmMembershipSampler::Scratch s1, s2;
  std::vector<std::size_t> block;
  sampler->SampleBlock(r1, points, &s1, &block);
  ASSERT_EQ(block.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(block[i], sampler->Sample(r2, points[i], &s2));
  }
  EXPECT_EQ(r1.NextU64(), r2.NextU64());
}

// ---------------------------------------------------------------------------
// Batched Gaussian log-density
// ---------------------------------------------------------------------------

TEST(GaussianKernelTest, BatchedNormalLogPdfWithin1e12) {
  stats::Rng rng(31);
  std::vector<double> x(512), out(512);
  for (auto& v : x) v = 20.0 * (rng.NextDouble() - 0.5);
  const double mean = 1.3, sd = 2.7;
  kernels::BatchedNormalLogPdf(x.data(), x.size(), mean, sd, out.data());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(out[i], stats::NormalLogPdf(x[i], mean, sd), 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Collapsed-LDA token kernel vs the original row-major two-pass sampler
// ---------------------------------------------------------------------------

/// The pre-kernel CollapsedLda implementation (row-major nested vectors,
/// two-pass weight + SampleCategorical), kept verbatim as the parity
/// reference.
class ReferenceCollapsedLda {
 public:
  ReferenceCollapsedLda(const models::LdaHyper& hyper,
                        std::vector<models::LdaDocument> docs,
                        std::uint64_t seed)
      : hyper_(hyper), docs_(std::move(docs)), rng_(seed) {
    Rebuild();
  }

  void Sweep() {
    Vector w(hyper_.topics);
    for (std::size_t d = 0; d < docs_.size(); ++d) {
      auto& doc = docs_[d];
      for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
        std::uint32_t word = doc.words[pos];
        std::size_t old_t = doc.topics[pos];
        n_tw_[old_t][word] -= 1;
        n_t_[old_t] -= 1;
        n_dt_[d][old_t] -= 1;
        double v = static_cast<double>(hyper_.vocab);
        for (std::size_t t = 0; t < hyper_.topics; ++t) {
          w[t] = (n_dt_[d][t] + hyper_.alpha) * (n_tw_[t][word] + hyper_.beta) /
                 (n_t_[t] + hyper_.beta * v);
        }
        std::size_t new_t = stats::SampleCategorical(rng_, w);
        doc.topics[pos] = static_cast<std::uint8_t>(new_t);
        n_tw_[new_t][word] += 1;
        n_t_[new_t] += 1;
        n_dt_[d][new_t] += 1;
      }
    }
  }

  void ApproximateParallelSweep() {
    auto n_tw_snap = n_tw_;
    auto n_t_snap = n_t_;
    auto n_dt_snap = n_dt_;
    Vector w(hyper_.topics);
    double v = static_cast<double>(hyper_.vocab);
    for (std::size_t d = 0; d < docs_.size(); ++d) {
      auto& doc = docs_[d];
      for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
        std::uint32_t word = doc.words[pos];
        std::size_t old_t = doc.topics[pos];
        for (std::size_t t = 0; t < hyper_.topics; ++t) {
          double excl = old_t == t ? 1.0 : 0.0;
          w[t] = (n_dt_snap[d][t] - excl + hyper_.alpha) *
                 (n_tw_snap[t][word] - excl + hyper_.beta) /
                 (n_t_snap[t] - excl + hyper_.beta * v);
        }
        doc.topics[pos] =
            static_cast<std::uint8_t>(stats::SampleCategorical(rng_, w));
      }
    }
    Rebuild();
  }

  const std::vector<models::LdaDocument>& docs() const { return docs_; }

 private:
  void Rebuild() {
    n_tw_.assign(hyper_.topics, std::vector<double>(hyper_.vocab, 0.0));
    n_t_.assign(hyper_.topics, 0.0);
    n_dt_.assign(docs_.size(), std::vector<double>(hyper_.topics, 0.0));
    for (std::size_t d = 0; d < docs_.size(); ++d) {
      for (std::size_t pos = 0; pos < docs_[d].words.size(); ++pos) {
        std::size_t t = docs_[d].topics[pos];
        n_tw_[t][docs_[d].words[pos]] += 1;
        n_t_[t] += 1;
        n_dt_[d][t] += 1;
      }
    }
  }

  models::LdaHyper hyper_;
  std::vector<models::LdaDocument> docs_;
  stats::Rng rng_;
  std::vector<std::vector<double>> n_tw_;
  std::vector<double> n_t_;
  std::vector<std::vector<double>> n_dt_;
};

std::vector<models::LdaDocument> MakeCorpus(const models::LdaHyper& hyper,
                                            std::size_t n_docs,
                                            std::size_t doc_len,
                                            std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<models::LdaDocument> docs;
  for (std::size_t d = 0; d < n_docs; ++d) {
    models::LdaDocument doc;
    for (std::size_t i = 0; i < doc_len; ++i) {
      doc.words.push_back(
          static_cast<std::uint32_t>(rng.NextBounded(hyper.vocab)));
    }
    models::InitLdaDocument(rng, hyper, &doc);
    docs.push_back(std::move(doc));
  }
  return docs;
}

TEST(CollapsedLdaKernelTest, SweepBitIdenticalToRowMajorReference) {
  models::LdaHyper hyper{8, 50, 0.5, 0.1};
  auto docs = MakeCorpus(hyper, 12, 40, 77);
  models::CollapsedLda kernel(hyper, docs, 123);
  ReferenceCollapsedLda reference(hyper, docs, 123);
  for (int sweep = 0; sweep < 3; ++sweep) {
    kernel.Sweep();
    reference.Sweep();
    for (std::size_t d = 0; d < docs.size(); ++d) {
      ASSERT_EQ(kernel.docs()[d].topics, reference.docs()[d].topics)
          << "sweep " << sweep << " doc " << d;
    }
  }
}

TEST(CollapsedLdaKernelTest, ApproximateSweepBitIdenticalToReference) {
  models::LdaHyper hyper{6, 40, 0.5, 0.1};
  auto docs = MakeCorpus(hyper, 8, 30, 13);
  models::CollapsedLda kernel(hyper, docs, 9);
  ReferenceCollapsedLda reference(hyper, docs, 9);
  for (int sweep = 0; sweep < 2; ++sweep) {
    kernel.ApproximateParallelSweep();
    reference.ApproximateParallelSweep();
    for (std::size_t d = 0; d < docs.size(); ++d) {
      ASSERT_EQ(kernel.docs()[d].topics, reference.docs()[d].topics);
    }
  }
}

TEST(CollapsedCountsTest, IncrementalCachesMatchFromScratchWeights) {
  const std::size_t docs = 3, topics = 5, vocab = 20;
  CollapsedCounts c;
  c.Reset(docs, topics, vocab, 0.5, 0.1);
  stats::Rng rng(4);
  std::vector<std::vector<std::pair<std::uint32_t, std::size_t>>> tokens(docs);
  for (std::size_t d = 0; d < docs; ++d) {
    for (int i = 0; i < 25; ++i) {
      auto w = static_cast<std::uint32_t>(rng.NextBounded(vocab));
      std::size_t t = rng.NextBounded(topics);
      c.AddToken(d, w, t);
      tokens[d].push_back({w, t});
    }
  }
  // Run fused token steps, then verify the count state still matches an
  // exact recount of the (updated) assignments.
  for (std::size_t d = 0; d < docs; ++d) {
    c.BeginDoc(d);
    for (auto& [w, t] : tokens[d]) {
      t = c.SampleTokenTopic(rng, w, t);
    }
  }
  std::vector<double> nt(topics, 0.0);
  std::vector<std::vector<double>> wt(topics, std::vector<double>(vocab, 0.0));
  for (std::size_t d = 0; d < docs; ++d) {
    for (auto& [w, t] : tokens[d]) {
      wt[t][w] += 1;
      nt[t] += 1;
    }
  }
  for (std::size_t t = 0; t < topics; ++t) {
    EXPECT_EQ(c.nt(t), nt[t]);
    for (std::uint32_t w = 0; w < vocab; ++w) EXPECT_EQ(c.wt(t, w), wt[t][w]);
  }
}

TEST(LogTableTest, EntriesBitIdenticalToStdLog) {
  kernels::LogTable table(0.1, 256);
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_EQ(table.Log(i), std::log(static_cast<double>(i) + 0.1));
  }
}

// ---------------------------------------------------------------------------
// HMM state kernel vs ResampleHmmStates (both emission-table modes)
// ---------------------------------------------------------------------------

void CheckHmmParity(std::size_t expected_tokens, bool want_transposed) {
  models::HmmHyper hyper{6, 30, 1.0, 0.1};
  stats::Rng init(2);
  auto params = models::SampleHmmPrior(init, hyper);
  std::vector<models::HmmDocument> ref_docs;
  for (int d = 0; d < 10; ++d) {
    models::HmmDocument doc;
    std::size_t len = 5 + init.NextBounded(30);
    for (std::size_t i = 0; i < len; ++i) {
      doc.words.push_back(
          static_cast<std::uint32_t>(init.NextBounded(hyper.vocab)));
    }
    models::InitHmmStates(init, hyper.states, &doc);
    ref_docs.push_back(std::move(doc));
  }
  auto kernel_docs = ref_docs;
  models::HmmSampler sampler;
  sampler.Prepare(params, expected_tokens);
  for (int iter = 0; iter < 4; ++iter) {
    stats::Rng r1(100 + iter), r2(100 + iter);
    for (std::size_t d = 0; d < ref_docs.size(); ++d) {
      models::ResampleHmmStates(r1, params, iter, &ref_docs[d]);
      sampler.Resample(r2, iter, &kernel_docs[d]);
      ASSERT_EQ(ref_docs[d].states, kernel_docs[d].states)
          << "iter " << iter << " doc " << d;
    }
    EXPECT_EQ(r1.NextU64(), r2.NextU64());
  }
  (void)want_transposed;
}

TEST(HmmKernelTest, MatchesReferenceWithTransposedEmissions) {
  CheckHmmParity(/*expected_tokens=*/100000, /*want_transposed=*/true);
}

TEST(HmmKernelTest, MatchesReferenceWithRowPointerEmissions) {
  CheckHmmParity(/*expected_tokens=*/1, /*want_transposed=*/false);
}

// ---------------------------------------------------------------------------
// LDA document kernel vs ResampleLdaDocument (both emission-table modes)
// ---------------------------------------------------------------------------

void CheckLdaParity(std::size_t expected_tokens) {
  models::LdaHyper hyper{7, 40, 0.5, 0.1};
  stats::Rng init(6);
  auto params = models::SampleLdaPrior(init, hyper);
  std::vector<models::LdaDocument> ref_docs;
  for (int d = 0; d < 12; ++d) {
    models::LdaDocument doc;
    std::size_t len = 5 + init.NextBounded(40);
    for (std::size_t i = 0; i < len; ++i) {
      doc.words.push_back(
          static_cast<std::uint32_t>(init.NextBounded(hyper.vocab)));
    }
    models::InitLdaDocument(init, hyper, &doc);
    ref_docs.push_back(std::move(doc));
  }
  auto kernel_docs = ref_docs;
  models::LdaDocSampler sampler;
  sampler.Prepare(hyper, params, expected_tokens);
  models::LdaCounts ref_counts(hyper.topics, hyper.vocab);
  models::LdaCounts kernel_counts(hyper.topics, hyper.vocab);
  stats::Rng r1(55), r2(55);
  for (std::size_t d = 0; d < ref_docs.size(); ++d) {
    models::ResampleLdaDocument(r1, hyper, params, &ref_docs[d], &ref_counts);
    sampler.Resample(r2, &kernel_docs[d], &kernel_counts);
    ASSERT_EQ(ref_docs[d].topics, kernel_docs[d].topics) << "doc " << d;
    ASSERT_EQ(ref_docs[d].theta.size(), kernel_docs[d].theta.size());
    for (std::size_t t = 0; t < hyper.topics; ++t) {
      // theta draws must be bit-identical, not merely close.
      ASSERT_EQ(ref_docs[d].theta[t], kernel_docs[d].theta[t]);
    }
  }
  EXPECT_EQ(r1.NextU64(), r2.NextU64());
  for (std::size_t t = 0; t < hyper.topics; ++t) {
    for (std::size_t w = 0; w < hyper.vocab; ++w) {
      ASSERT_EQ(ref_counts.g[t][w], kernel_counts.g[t][w]);
    }
  }
}

TEST(LdaKernelTest, MatchesReferenceWithTransposedEmissions) {
  CheckLdaParity(/*expected_tokens=*/100000);
}

TEST(LdaKernelTest, MatchesReferenceWithRowPointerEmissions) {
  CheckLdaParity(/*expected_tokens=*/1);
}

TEST(EmissionTableTest, TransposeHeuristicAndContentsAgree) {
  std::vector<Vector> rows;
  stats::Rng rng(12);
  const std::size_t k = 4, vocab = 16;
  for (std::size_t s = 0; s < k; ++s) {
    Vector row(vocab);
    for (auto& v : row) v = rng.NextDouble();
    rows.push_back(std::move(row));
  }
  kernels::EmissionTable transposed;
  transposed.Prepare(rows, /*expected_draws=*/vocab);
  EXPECT_TRUE(transposed.transposed());
  kernels::EmissionTable pointered;
  pointered.Prepare(rows, /*expected_draws=*/vocab - 1);
  EXPECT_FALSE(pointered.transposed());
  for (std::uint32_t w = 0; w < vocab; ++w) {
    const double* col = transposed.Column(w);
    for (std::size_t s = 0; s < k; ++s) {
      EXPECT_EQ(col[s], rows[s][w]);
      EXPECT_EQ(pointered.RowPointers()[s][w], rows[s][w]);
    }
  }
}

// ---------------------------------------------------------------------------
// Alias table batch refill / batch sampling
// ---------------------------------------------------------------------------

TEST(AliasTableKernelTest, RebuildMatchesFreshConstruction) {
  stats::Rng rng(19);
  stats::AliasTable reused(stats::ZipfWeights(64, 1.1));
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> w(32 + trial * 16);
    for (auto& v : w) v = rng.NextDouble() + 0.01;
    reused.Rebuild(w);
    stats::AliasTable fresh(w);
    ASSERT_EQ(reused.size(), fresh.size());
    stats::Rng r1(trial), r2(trial);
    for (int i = 0; i < 500; ++i) {
      ASSERT_EQ(reused.Sample(r1), fresh.Sample(r2));
    }
  }
}

TEST(AliasTableKernelTest, SampleBatchMatchesLoop) {
  stats::AliasTable table(stats::ZipfWeights(100, 1.05));
  stats::Rng r1(33), r2(33);
  std::vector<std::uint32_t> batch(1000);
  table.SampleBatch(r1, batch.data(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(batch[i], static_cast<std::uint32_t>(table.Sample(r2)));
  }
  EXPECT_EQ(r1.NextU64(), r2.NextU64());
}

// ---------------------------------------------------------------------------
// Blocked linalg primitives
// ---------------------------------------------------------------------------

TEST(BlockedLinalgTest, ElementwiseOpsBitIdenticalToScalarLoops) {
  stats::Rng rng(27);
  for (std::size_t n : {1u, 3u, 8u, 17u, 64u, 129u}) {
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.NextDouble() - 0.5;
      b[i] = rng.NextDouble() - 0.5;
    }
    double alpha = 1.7;
    auto want = a;
    for (std::size_t i = 0; i < n; ++i) want[i] += alpha * b[i];
    auto got = a;
    linalg::blocked::AddScaled(got.data(), b.data(), alpha, n);
    EXPECT_EQ(got, want);

    want = a;
    for (std::size_t i = 0; i < n; ++i) want[i] -= b[i];
    got = a;
    linalg::blocked::Sub(got.data(), b.data(), n);
    EXPECT_EQ(got, want);

    want = a;
    for (std::size_t i = 0; i < n; ++i) want[i] *= alpha;
    got = a;
    linalg::blocked::Scale(got.data(), alpha, n);
    EXPECT_EQ(got, want);
  }
}

TEST(BlockedLinalgTest, DotAndSumWithinTolerance) {
  stats::Rng rng(41);
  const std::size_t n = 1000;
  std::vector<double> a(n), b(n);
  double sdot = 0, ssum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.NextDouble() - 0.5;
    b[i] = rng.NextDouble() - 0.5;
    sdot += a[i] * b[i];
    ssum += a[i];
  }
  EXPECT_NEAR(linalg::blocked::Dot(a.data(), b.data(), n), sdot, 1e-12);
  EXPECT_NEAR(linalg::blocked::Sum(a.data(), n), ssum, 1e-12);
}

TEST(BlockedLinalgTest, RowReduceBitIdenticalToSequentialAdds) {
  stats::Rng rng(53);
  const std::size_t rows = 9, cols = 21;
  std::vector<double> m(rows * cols);
  for (auto& v : m) v = rng.NextDouble() - 0.5;
  std::vector<double> want(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) want[c] += m[r * cols + c];
  }
  std::vector<double> got(cols, 0.0);
  linalg::blocked::RowReduce(m.data(), rows, cols, got.data());
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace mlbench
