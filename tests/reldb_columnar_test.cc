#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/gmm_reldb.h"
#include "core/hmm_reldb.h"
#include "core/lasso_reldb.h"
#include "core/lda_reldb.h"
#include "exec/thread_pool.h"
#include "reldb/column_batch.h"
#include "reldb/database.h"
#include "reldb/rel.h"
#include "reldb/vg_library.h"
#include "sim/cluster_sim.h"
#include "sim/machine.h"

namespace mlbench {
namespace {

using core::RunResult;
using reldb::AggOp;
using reldb::AsDouble;
using reldb::AsInt;
using reldb::ColExpr;
using reldb::ColumnBatch;
using reldb::Database;
using reldb::Rel;
using reldb::Schema;
using reldb::Table;
using reldb::Tuple;

// ---- Operator-level parity -------------------------------------------------
//
// Every test runs the same plan against two Databases that differ only in
// the engine flag and demands bit-identical tuples (typed variant equality),
// identical simulated time, and an identical RNG stream afterwards.

void ExpectSameTable(const Table& a, const Table& b) {
  ASSERT_EQ(a.schema().columns(), b.schema().columns());
  EXPECT_EQ(a.scale(), b.scale());
  ASSERT_EQ(a.rows().size(), b.rows().size());
  for (std::size_t r = 0; r < a.rows().size(); ++r) {
    // std::variant equality is type-sensitive: an int64 1 != double 1.0.
    EXPECT_TRUE(a.rows()[r] == b.rows()[r]) << "row " << r;
  }
}

class EngineParity : public ::testing::Test {
 protected:
  EngineParity()
      : sim_row_(sim::Ec2M2XLargeCluster(5)),
        sim_col_(sim::Ec2M2XLargeCluster(5)),
        row_(&sim_row_, sim::RelDbCosts{}, 42),
        col_(&sim_col_, sim::RelDbCosts{}, 42) {
    row_.set_columnar(false);
    col_.set_columnar(true);

    Table data(Schema{"data_id", "dim_id", "data_val"}, 1e6);
    for (std::int64_t p = 0; p < 40; ++p) {
      for (std::int64_t d = 0; d < 3; ++d) {
        data.Append(Tuple{p, d, static_cast<double>(10 * p + d + 1) * 0.25});
      }
    }
    Load("data", data);

    Table members(Schema{"data_id", "clus_id"}, 1e6);
    for (std::int64_t p = 0; p < 40; ++p) members.Append(Tuple{p, p % 7});
    Load("membership", members);
  }

  void Load(const std::string& name, const Table& t) {
    row_.Put(name, t);
    col_.Put(name, t);
  }

  /// Runs `plan` on both engines and checks tuples, simulated time, and the
  /// next RNG draw all match.
  void ExpectParity(const std::function<Rel(Database&)>& plan) {
    row_.BeginQuery("q");
    Rel r = plan(row_);
    row_.EndQuery();
    col_.BeginQuery("q");
    Rel c = plan(col_);
    col_.EndQuery();
    EXPECT_FALSE(r.columnar());
    ExpectSameTable(r.table(), c.table());
    EXPECT_EQ(sim_row_.elapsed_seconds(), sim_col_.elapsed_seconds());
    EXPECT_EQ(row_.rng().NextU64(), col_.rng().NextU64());
  }

  sim::ClusterSim sim_row_, sim_col_;
  Database row_, col_;
};

TEST_F(EngineParity, ScanEngagesConfiguredEngine) {
  row_.BeginQuery("q");
  col_.BeginQuery("q");
  EXPECT_FALSE(Rel::Scan(row_, "data").columnar());
  EXPECT_TRUE(Rel::Scan(col_, "data").columnar());
  row_.EndQuery();
  col_.EndQuery();
}

TEST_F(EngineParity, Filter) {
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "data").Filter(
        [](const Tuple& t) { return AsDouble(t[2]) > 17.0; });
  });
}

TEST_F(EngineParity, FilterIntIn) {
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "data").FilterIntIn("dim_id", {0, 2});
  });
}

TEST_F(EngineParity, ProjectWithRowFunction) {
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "data").Project(
        Schema{"data_id", "sq"},
        [](const Tuple& t) { return Tuple{t[0], AsDouble(t[2]) * AsDouble(t[2])}; });
  });
}

TEST_F(EngineParity, ProjectStructuredExprs) {
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "data").Project(
        Schema{"data_id", "kind", "unit", "twice"},
        {ColExpr::Col(0), ColExpr::Const(std::int64_t{3}), ColExpr::Const(1.5),
         ColExpr::Fn([](const Tuple& t) { return AsDouble(t[2]) * 2.0; })});
  });
}

TEST_F(EngineParity, Renamed) {
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "data").Renamed(Schema{"a", "b", "c"});
  });
}

TEST_F(EngineParity, HashJoinPackedIntKeys) {
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "data").HashJoin(Rel::Scan(db, "membership"),
                                          {"data_id"}, {"data_id"}, 1e6);
  });
}

TEST_F(EngineParity, HashJoinDoubleKeyFallsBackIdentically) {
  Table vals(Schema{"v", "tag"}, 1.0);
  for (std::int64_t i = 0; i < 12; ++i) {
    vals.Append(Tuple{static_cast<double>(i % 4) * 0.5, i});
  }
  Load("vals", vals);
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "vals").HashJoin(Rel::Scan(db, "vals"), {"v"}, {"v"},
                                          1.0);
  });
}

TEST_F(EngineParity, HashJoinEmptyKeysIsCrossJoin) {
  Table one(Schema{"lambda"}, 1.0);
  one.Append(Tuple{2.5});
  Load("prior", one);
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "membership")
        .HashJoin(Rel::Scan(db, "prior"), {}, {}, 1e6);
  });
}

TEST_F(EngineParity, HashJoinMoreKeysThanPackWidth) {
  Table wide(Schema{"a", "b", "c", "d", "e", "val"}, 1.0);
  for (std::int64_t i = 0; i < 30; ++i) {
    wide.Append(Tuple{i % 2, i % 3, i % 5, i % 7, i % 11, 0.5 * i});
  }
  Load("wide", wide);
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "wide").HashJoin(Rel::Scan(db, "wide"),
                                          {"a", "b", "c", "d", "e"},
                                          {"a", "b", "c", "d", "e"}, 1.0);
  });
}

TEST_F(EngineParity, GroupByPackedIntKeysAllAggs) {
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "data").GroupBy(
        {"dim_id"},
        {{AggOp::kSum, "data_val", "s"},
         {AggOp::kCount, "", "n"},
         {AggOp::kAvg, "data_val", "m"},
         {AggOp::kMin, "data_val", "lo"},
         {AggOp::kMax, "data_val", "hi"}},
        1.0);
  });
}

TEST_F(EngineParity, GroupByDoubleKeyFallsBackIdentically) {
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "data").GroupBy(
        {"data_val"}, {{AggOp::kCount, "", "n"}}, 1.0);
  });
}

TEST_F(EngineParity, GroupByFirstSeenOrderSurvivesJoin) {
  // Group keys arrive join-ordered, not sorted; output order must match the
  // row engine's first-seen order exactly.
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "data")
        .HashJoin(Rel::Scan(db, "membership"), {"data_id"}, {"data_id"}, 1e6)
        .GroupBy({"clus_id", "dim_id"}, {{AggOp::kSum, "data_val", "s"}}, 1.0);
  });
}

TEST_F(EngineParity, VgApplyConsumesIdenticalRngStream) {
  ExpectParity([](Database& db) {
    reldb::DirichletVg vg("dim_id", "data_val");
    return Rel::Scan(db, "data").VgApply(vg, {"data_id"}, 1e6);
  });
}

TEST_F(EngineParity, VgApplyEmptyGroupCols) {
  ExpectParity([](Database& db) {
    reldb::CategoricalVg vg("data_id", "data_val");
    return Rel::Scan(db, "data").VgApply(vg, {}, 1.0);
  });
}

TEST_F(EngineParity, UnionIncludingEmptySides) {
  Table empty(Schema{"data_id", "dim_id", "data_val"}, 1e6);
  Load("empty", empty);
  ExpectParity([](Database& db) {
    auto a = Rel::Scan(db, "data");
    auto e = Rel::Scan(db, "empty");
    return a.Union(e).Union(e.Union(a)).Union(a);
  });
}

TEST_F(EngineParity, MaterializeRoundTrip) {
  ExpectParity([](Database& db) {
    Rel::Scan(db, "data").FilterIntIn("dim_id", {1}).Materialize("snap");
    return Rel::Scan(db, "snap");
  });
}

TEST_F(EngineParity, MixedTypeColumnFallsBackToRows) {
  // One column holds both int and double values: the batch conversion must
  // refuse, the scan must stay row-form even on the columnar engine, and
  // results must still agree.
  Table mixed(Schema{"id", "v"}, 1.0);
  mixed.Append(Tuple{std::int64_t{0}, std::int64_t{7}});
  mixed.Append(Tuple{std::int64_t{1}, 7.5});
  mixed.Append(Tuple{std::int64_t{2}, std::int64_t{9}});
  Load("mixed", mixed);

  EXPECT_EQ(col_.GetColumnar("mixed"), nullptr);
  EXPECT_FALSE(ColumnBatch::FromTable(*col_.Get("mixed")).has_value());

  row_.BeginQuery("q");
  col_.BeginQuery("q");
  EXPECT_FALSE(Rel::Scan(col_, "mixed").columnar());
  EXPECT_FALSE(Rel::Scan(row_, "mixed").columnar());
  row_.EndQuery();
  col_.EndQuery();
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "mixed").Filter(
        [](const Tuple& t) { return AsDouble(t[1]) > 7.2; });
  });
}

// ---- Whole-driver parity ---------------------------------------------------
//
// Each reldb model driver runs once on the row engine and once columnar, at
// 1 and at 4 host threads; every observable — simulated init/iteration
// times, peak RAM, and the final model — must be bit-identical.

void ExpectSameRun(const RunResult& a, const RunResult& b) {
  ASSERT_TRUE(a.ok()) << a.status.ToString();
  ASSERT_TRUE(b.ok()) << b.status.ToString();
  EXPECT_EQ(a.init_seconds, b.init_seconds);
  ASSERT_EQ(a.iteration_seconds.size(), b.iteration_seconds.size());
  for (std::size_t i = 0; i < a.iteration_seconds.size(); ++i) {
    EXPECT_EQ(a.iteration_seconds[i], b.iteration_seconds[i]) << "iter " << i;
  }
  EXPECT_EQ(a.peak_machine_bytes, b.peak_machine_bytes);
}

class DriverParity : public ::testing::Test {
 protected:
  void TearDown() override {
    exec::ThreadPool::SetGlobalThreads(1);
    Database::SetDefaultColumnar(saved_);
  }

  /// Runs `runner` row-engine at 1 thread (the baseline), then columnar at
  /// 1 and 4 threads, comparing each columnar run to the baseline with
  /// `same_model`.
  template <typename Model, typename Runner>
  void ExpectEngineParity(
      Runner runner,
      const std::function<void(const Model&, const Model&)>& same_model) {
    exec::ThreadPool::SetGlobalThreads(1);
    Database::SetDefaultColumnar(false);
    Model base_model;
    RunResult base = runner(&base_model);

    for (int threads : {1, 4}) {
      exec::ThreadPool::SetGlobalThreads(threads);
      Database::SetDefaultColumnar(true);
      Model model;
      RunResult run = runner(&model);
      ExpectSameRun(base, run);
      same_model(base_model, model);
    }
  }

 private:
  bool saved_ = Database::DefaultColumnar();
};

void ExpectSameGmm(const models::GmmParams& a, const models::GmmParams& b) {
  EXPECT_EQ(a.pi.raw(), b.pi.raw());
  ASSERT_EQ(a.mu.size(), b.mu.size());
  for (std::size_t k = 0; k < a.mu.size(); ++k) {
    EXPECT_EQ(a.mu[k].raw(), b.mu[k].raw()) << "mu " << k;
    for (std::size_t r = 0; r < a.sigma[k].rows(); ++r) {
      for (std::size_t c = 0; c < a.sigma[k].cols(); ++c) {
        EXPECT_EQ(a.sigma[k](r, c), b.sigma[k](r, c)) << "sigma " << k;
      }
    }
  }
}

core::GmmExperiment SmallGmm(bool imputation) {
  core::GmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 3;
  exp.dim = 3;
  exp.k = 2;
  exp.config.data.logical_per_machine = 1e6;
  exp.config.data.actual_per_machine = 200;
  exp.config.seed = 77;
  exp.imputation = imputation;
  return exp;
}

TEST_F(DriverParity, Gmm) {
  core::GmmExperiment exp = SmallGmm(false);
  ExpectEngineParity<models::GmmParams>(
      [&](models::GmmParams* m) { return core::RunGmmRelDb(exp, m); },
      ExpectSameGmm);
}

TEST_F(DriverParity, GmmImputation) {
  core::GmmExperiment exp = SmallGmm(true);
  ExpectEngineParity<models::GmmParams>(
      [&](models::GmmParams* m) { return core::RunGmmRelDb(exp, m); },
      ExpectSameGmm);
}

TEST_F(DriverParity, HmmWordBased) {
  core::HmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.states = 3;
  exp.vocab = 50;
  exp.mean_doc_len = 12;
  exp.granularity = core::TextGranularity::kWord;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 20;
  exp.config.seed = 19;
  ExpectEngineParity<models::HmmParams>(
      [&](models::HmmParams* m) { return core::RunHmmRelDb(exp, m); },
      [](const models::HmmParams& a, const models::HmmParams& b) {
        EXPECT_EQ(a.delta0.raw(), b.delta0.raw());
        ASSERT_EQ(a.delta.size(), b.delta.size());
        for (std::size_t s = 0; s < a.delta.size(); ++s) {
          EXPECT_EQ(a.delta[s].raw(), b.delta[s].raw()) << "delta " << s;
          EXPECT_EQ(a.psi[s].raw(), b.psi[s].raw()) << "psi " << s;
        }
      });
}

TEST_F(DriverParity, LdaDocumentBased) {
  core::LdaExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.topics = 4;
  exp.vocab = 60;
  exp.mean_doc_len = 15;
  exp.granularity = core::TextGranularity::kDocument;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 20;
  exp.config.seed = 31;
  ExpectEngineParity<models::LdaParams>(
      [&](models::LdaParams* m) { return core::RunLdaRelDb(exp, m); },
      [](const models::LdaParams& a, const models::LdaParams& b) {
        ASSERT_EQ(a.phi.size(), b.phi.size());
        for (std::size_t t = 0; t < a.phi.size(); ++t) {
          EXPECT_EQ(a.phi[t].raw(), b.phi[t].raw()) << "topic " << t;
        }
      });
}

TEST_F(DriverParity, Lasso) {
  core::LassoExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 3;
  exp.p = 8;
  exp.config.data.actual_per_machine = 100;
  exp.config.seed = 7;
  ExpectEngineParity<models::LassoState>(
      [&](models::LassoState* m) { return core::RunLassoRelDb(exp, m); },
      [](const models::LassoState& a, const models::LassoState& b) {
        EXPECT_EQ(a.beta.raw(), b.beta.raw());
        EXPECT_EQ(a.inv_tau2.raw(), b.inv_tau2.raw());
        EXPECT_EQ(a.sigma2, b.sigma2);
      });
}

}  // namespace
}  // namespace mlbench
