#include <gtest/gtest.h>

// mlint: allow(raw-thread) — this suite tests the exec layer itself and
// needs atomics to observe the pool from outside
#include <atomic>
#include <cstdint>
// mlint: allow(raw-thread) — thread ids identify the inline fast path
#include <thread>
#include <vector>

#include "core/gmm_bsp.h"
#include "core/gmm_dataflow.h"
#include "core/gmm_gas.h"
#include "core/gmm_reldb.h"
#include "core/lda_bsp.h"
#include "exec/parallel_for.h"
#include "exec/thread_pool.h"
#include "sim/charge_ledger.h"
#include "sim/cluster_sim.h"
#include "sim/machine.h"

namespace mlbench {
namespace {

using core::GmmExperiment;
using core::LdaExperiment;
using core::RunResult;

// ---- ThreadPool / ParallelFor mechanics ------------------------------------

TEST(ThreadPoolTest, RunsEveryChunkExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    exec::ThreadPool pool(threads);
    constexpr std::int64_t kChunks = 1000;
    // mlint: allow(raw-thread) — counts chunk executions across pool
    // threads to prove exactly-once dispatch
    std::vector<std::atomic<int>> hits(kChunks);
    pool.Run(kChunks, [&](std::int64_t c) { hits[c].fetch_add(1); });
    for (std::int64_t c = 0; c < kChunks; ++c) {
      ASSERT_EQ(hits[c].load(), 1) << "chunk " << c << " @" << threads;
    }
  }
}

TEST(ThreadPoolTest, NestedRunCompletes) {
  exec::ThreadPool pool(4);
  // mlint: allow(raw-thread) — cross-thread completion counter for the
  // nested-pool test
  std::atomic<int> total{0};
  pool.Run(8, [&](std::int64_t) {
    exec::ThreadPool inner(2);
    inner.Run(8, [&](std::int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ZeroChunksIsANoOp) {
  exec::ThreadPool pool(4);
  // mlint: allow(raw-thread) — observes the pool from outside
  std::atomic<int> calls{0};
  pool.Run(0, [&](std::int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  // An empty Run never reaches the dispatch path and is not counted.
  exec::DispatchStats stats = pool.Stats();
  EXPECT_EQ(stats.parallel_runs, 0u);
  EXPECT_EQ(stats.serial_runs, 0u);
}

TEST(ThreadPoolTest, SingleChunkRunsInlineOnCaller) {
  exec::ThreadPool pool(4);
  // mlint: allow(raw-thread) — compares thread ids to pin the inline path
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id executed;  // mlint: allow(raw-thread) — see above
  pool.Run(1, [&](std::int64_t c) {
    EXPECT_EQ(c, 0);
    // mlint: allow(raw-thread) — observes which thread ran the chunk
    executed = std::this_thread::get_id();
  });
  EXPECT_EQ(executed, caller);
  EXPECT_EQ(pool.Stats().parallel_runs, 0u);
  EXPECT_EQ(pool.Stats().serial_runs, 1u);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerCompletes) {
  // An inner ParallelFor issued from inside a chunk of the *same global
  // pool* must complete (degenerating to caller-only execution when all
  // workers are busy) without deadlock or double-execution.
  exec::ThreadPool::SetGlobalThreads(4);
  // mlint: allow(raw-thread) — counts nested chunk executions
  std::atomic<int> total{0};
  exec::ParallelFor(8, 1, [&](const exec::Chunk&) {
    exec::ParallelFor(16, 1,
                      [&](const exec::Chunk&) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
  exec::ThreadPool::SetGlobalThreads(1);
}

TEST(ThreadPoolTest, GlobalResizeBetweenJobs) {
  // mlint: allow(raw-thread) — counts chunk executions across resizes
  std::atomic<int> total{0};
  for (int threads : {1, 3, 4, 2, 1, 4}) {
    exec::ThreadPool::SetGlobalThreads(threads);
    total.store(0);
    exec::ParallelFor(100, 1,
                      [&](const exec::Chunk&) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 100) << "threads=" << threads;
    EXPECT_EQ(exec::ThreadPool::Global().threads(), threads);
  }
  exec::ThreadPool::SetGlobalThreads(1);
}

TEST(ThreadPoolTest, ManyTinyBackToBackRuns) {
  // Stress the lock-free dispatch path: thousands of small jobs in quick
  // succession exercise the spin/park transitions and the hazard-slot
  // retire protocol (TSan runs this suite in CI).
  exec::ThreadPool pool(4);
  // mlint: allow(raw-thread) — exactly-once accounting under stress
  std::atomic<std::int64_t> total{0};
  constexpr int kRuns = 5000;
  for (int r = 0; r < kRuns; ++r) {
    pool.Run(3, [&](std::int64_t c) { total.fetch_add(c + 1); });
  }
  EXPECT_EQ(total.load(), static_cast<std::int64_t>(kRuns) * (1 + 2 + 3));
}

TEST(ThreadPoolTest, DispatchStatsAccountForEveryChunk) {
  exec::ThreadPool pool(4);
  pool.SetDispatchTiming(true);
  constexpr std::int64_t kChunks = 256;
  constexpr int kRuns = 50;
  // mlint: allow(raw-thread) — chunk bodies must be thread-safe
  std::atomic<std::int64_t> executed{0};
  for (int r = 0; r < kRuns; ++r) {
    pool.Run(kChunks, [&](std::int64_t) { executed.fetch_add(1); });
  }
  exec::DispatchStats stats = pool.Stats();
  EXPECT_EQ(stats.parallel_runs, static_cast<std::uint64_t>(kRuns));
  EXPECT_EQ(stats.serial_runs, 0u);
  // Every chunk is accounted to exactly one executor.
  EXPECT_EQ(stats.caller_chunks + stats.worker_chunks_total(),
            static_cast<std::uint64_t>(kChunks) * kRuns);
  EXPECT_EQ(executed.load(), kChunks * kRuns);
  EXPECT_EQ(stats.worker_chunks.size(), 3u);  // threads - 1 workers
  pool.ResetStats();
  stats = pool.Stats();
  EXPECT_EQ(stats.parallel_runs, 0u);
  EXPECT_EQ(stats.caller_chunks + stats.worker_chunks_total(), 0u);
  EXPECT_EQ(stats.dispatch_ns, 0u);
}

TEST(ChunkingTest, BoundariesDependOnlyOnRangeAndGrain) {
  EXPECT_EQ(exec::NumChunks(0, 10), 0);
  EXPECT_EQ(exec::NumChunks(1, 10), 1);
  EXPECT_EQ(exec::NumChunks(10, 10), 1);
  EXPECT_EQ(exec::NumChunks(11, 10), 2);
  exec::Chunk last = exec::ChunkAt(11, 10, 1);
  EXPECT_EQ(last.begin, 10);
  EXPECT_EQ(last.end, 11);
  // Chunks tile [0, n) exactly.
  std::int64_t covered = 0;
  for (std::int64_t c = 0; c < exec::NumChunks(1234, 17); ++c) {
    exec::Chunk ch = exec::ChunkAt(1234, 17, c);
    EXPECT_EQ(ch.begin, covered);
    covered = ch.end;
  }
  EXPECT_EQ(covered, 1234);
}

// A floating-point fold whose result depends on summation order; if chunk
// partials were folded in completion order instead of index order, runs at
// different thread counts would disagree in the low bits.
double OrderSensitiveSum(std::int64_t n, std::int64_t grain) {
  return exec::ParallelReduce<double>(
      n, grain, 0.0,
      [](const exec::Chunk& chunk) {
        double s = 0;
        for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
          s += 1.0 / (1.0 + static_cast<double>(i) * 1e-3);
        }
        return s;
      },
      [](double acc, double partial) { return acc + partial; });
}

TEST(ParallelReduceTest, BitIdenticalAcrossThreadCounts) {
  exec::ThreadPool::SetGlobalThreads(1);
  double serial = OrderSensitiveSum(100000, 64);
  exec::ThreadPool::SetGlobalThreads(4);
  double parallel = OrderSensitiveSum(100000, 64);
  exec::ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(serial, parallel);  // bit-exact, not NEAR
}

TEST(GrainForTest, PureInRangeAndHintNeverThreadCount) {
  for (auto hint : {exec::CostHint::kCheap, exec::CostHint::kNormal,
                    exec::CostHint::kHeavy}) {
    for (std::int64_t n : {0, 1, 100, 2048, 16384, 100000, 12345678}) {
      exec::ThreadPool::SetGlobalThreads(1);
      std::int64_t g1 = exec::GrainFor(n, hint);
      exec::ThreadPool::SetGlobalThreads(4);
      std::int64_t g4 = exec::GrainFor(n, hint);
      exec::ThreadPool::SetGlobalThreads(1);
      ASSERT_EQ(g1, g4) << "n=" << n;
      ASSERT_GE(g1, 1) << "n=" << n;
      // The chunk-count ceiling holds for every range.
      ASSERT_LE(exec::NumChunks(n, g1), exec::kMaxChunksPerRun) << "n=" << n;
    }
  }
}

TEST(GrainForTest, SmallRangesStaySerial) {
  // Below the serial cutoff the whole range is one chunk, so ParallelFor
  // takes the inline fast path and never pays a dispatch.
  EXPECT_EQ(exec::NumChunks(1000, exec::GrainFor(1000, exec::CostHint::kCheap)),
            1);
  EXPECT_EQ(
      exec::NumChunks(1000, exec::GrainFor(1000, exec::CostHint::kNormal)), 1);
  // Heavy items parallelize almost immediately.
  EXPECT_GT(exec::NumChunks(8, exec::GrainFor(8, exec::CostHint::kHeavy)), 1);
}

TEST(ScratchVecTest, ReusesCapacityAcrossLeases) {
  const double* first_data = nullptr;
  std::size_t first_cap = 0;
  {
    exec::ScratchVec<double> lease;
    lease->clear();
    lease->shrink_to_fit();
    lease->resize(1000);
    first_data = lease->data();
    first_cap = lease->capacity();
  }
  {
    // The next lease on this thread checks the same vector back out:
    // same backing storage, no allocation.
    exec::ScratchVec<double> lease;
    EXPECT_EQ(lease->data(), first_data);
    EXPECT_GE(lease->capacity(), first_cap);
  }
}

TEST(ScratchVecTest, NestedLeasesAreDistinct) {
  exec::ScratchVec<int> outer;
  outer->assign(10, 1);
  {
    exec::ScratchVec<int> inner;
    inner->assign(10, 2);
    // Checkout semantics: the inner lease must not alias the outer one.
    EXPECT_NE(outer->data(), inner->data());
    EXPECT_EQ((*outer)[0], 1);
    EXPECT_EQ((*inner)[0], 2);
  }
  EXPECT_EQ((*outer)[0], 1);
}

// ---- ChargeLedger replay ---------------------------------------------------

TEST(ChargeLedgerTest, CommitReplaysSerialSequence) {
  sim::ClusterSim direct(sim::Ec2M2XLargeCluster(2));
  direct.BeginPhase("p");
  direct.ChargeCpu(0, 3.0);
  direct.ChargeNetwork(1, 5e8);
  direct.ChargeFixed(1.5);
  ASSERT_TRUE(direct.Allocate(1, 2e9, "buf").ok());
  double direct_t = direct.EndPhase();

  sim::ClusterSim replayed(sim::Ec2M2XLargeCluster(2));
  replayed.BeginPhase("p");
  sim::ChargeLedger ledger;
  {
    sim::ScopedLedger bind(&ledger);
    replayed.ChargeCpu(0, 3.0);
    replayed.ChargeNetwork(1, 5e8);
    replayed.ChargeFixed(1.5);
    ASSERT_TRUE(replayed.Allocate(1, 2e9, "buf").ok());
    // Nothing reached the sim yet.
    EXPECT_DOUBLE_EQ(replayed.used_bytes(1), 0.0);
  }
  ASSERT_TRUE(replayed.CommitLedger(ledger).ok());
  EXPECT_EQ(replayed.EndPhase(), direct_t);
  EXPECT_EQ(replayed.used_bytes(1), direct.used_bytes(1));
  EXPECT_EQ(replayed.peak_bytes(), direct.peak_bytes());
}

TEST(ChargeLedgerTest, DeferredOomSurfacesAtCommitAndDiscardsTail) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(1));
  sim.BeginPhase("p");
  sim::ChargeLedger ledger;
  {
    sim::ScopedLedger bind(&ledger);
    // Optimistically OK inside the chunk...
    ASSERT_TRUE(sim.Allocate(0, 1e15, "giant").ok());
    // ...ops after the failure point must be discarded by the replay,
    // matching the serial early-return.
    sim.ChargeCpu(0, 100.0);
  }
  Status st = sim.CommitLedger(ledger);
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_DOUBLE_EQ(sim.used_bytes(0), 0.0);
  EXPECT_DOUBLE_EQ(sim.EndPhase(), 0.0);  // the tail's CPU charge never landed
}

TEST(ChargeLedgerTest, TransientAllocationsReportedOnCommit) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  sim::ChargeLedger ledger;
  {
    sim::ScopedLedger bind(&ledger);
    ledger.LogTransientAlloc(1, 7e8, "shuffle buf");
  }
  std::vector<std::pair<int, double>> seen;
  ASSERT_TRUE(sim.CommitLedger(ledger, [&](int machine, double bytes) {
                    seen.emplace_back(machine, bytes);
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, 1);
  EXPECT_DOUBLE_EQ(seen[0].second, 7e8);
  EXPECT_DOUBLE_EQ(sim.used_bytes(1), 7e8);
}

TEST(ChargeLedgerTest, NestedCommitSplicesIntoOuterLedger) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(1));
  sim.BeginPhase("p");
  sim::ChargeLedger outer;
  {
    sim::ScopedLedger bind_outer(&outer);
    sim::ChargeLedger inner;
    {
      sim::ScopedLedger bind_inner(&inner);
      sim.ChargeCpu(0, 2.0);
    }
    // Inner commit happens while the outer ledger is bound: ops re-queue.
    ASSERT_TRUE(sim.CommitLedger(inner).ok());
    EXPECT_TRUE(inner.empty());
    EXPECT_FALSE(outer.empty());
  }
  ASSERT_TRUE(sim.CommitLedger(outer).ok());
  EXPECT_GT(sim.EndPhase(), 0.0);
}

// ---- Engine-level determinism ----------------------------------------------
//
// The PR's contract: model state AND simulated timing are bit-identical at
// any MLBENCH_THREADS. Run each experiment at 1 and 4 host threads and
// compare every observable of the run exactly (EXPECT_EQ on doubles — no
// tolerance).

GmmExperiment SmallGmm(bool super) {
  GmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 4;
  exp.dim = 3;
  exp.k = 2;
  exp.super_vertex = super;
  exp.config.data.logical_per_machine = 1e6;
  exp.config.data.actual_per_machine = 300;
  exp.config.seed = 77;
  return exp;
}

void ExpectSameRun(const RunResult& a, const RunResult& b) {
  ASSERT_TRUE(a.ok()) << a.status.ToString();
  ASSERT_TRUE(b.ok()) << b.status.ToString();
  EXPECT_EQ(a.init_seconds, b.init_seconds);
  ASSERT_EQ(a.iteration_seconds.size(), b.iteration_seconds.size());
  for (std::size_t i = 0; i < a.iteration_seconds.size(); ++i) {
    EXPECT_EQ(a.iteration_seconds[i], b.iteration_seconds[i]) << "iter " << i;
  }
  EXPECT_EQ(a.peak_machine_bytes, b.peak_machine_bytes);
}

void ExpectSameModel(const models::GmmParams& a, const models::GmmParams& b) {
  EXPECT_EQ(a.pi.raw(), b.pi.raw());
  ASSERT_EQ(a.mu.size(), b.mu.size());
  for (std::size_t k = 0; k < a.mu.size(); ++k) {
    EXPECT_EQ(a.mu[k].raw(), b.mu[k].raw()) << "mu " << k;
    for (std::size_t r = 0; r < a.sigma[k].rows(); ++r) {
      for (std::size_t c = 0; c < a.sigma[k].cols(); ++c) {
        EXPECT_EQ(a.sigma[k](r, c), b.sigma[k](r, c))
            << "sigma " << k << " (" << r << "," << c << ")";
      }
    }
  }
}

using GmmRunner = RunResult (*)(const GmmExperiment&, models::GmmParams*);

struct GmmDeterminismCase {
  const char* name;
  GmmRunner runner;
  bool super;
};

class GmmThreadDeterminism
    : public ::testing::TestWithParam<GmmDeterminismCase> {
 protected:
  void TearDown() override { exec::ThreadPool::SetGlobalThreads(1); }
};

TEST_P(GmmThreadDeterminism, BitIdenticalAt1And4Threads) {
  auto [name, runner, super] = GetParam();
  GmmExperiment exp = SmallGmm(super);

  exec::ThreadPool::SetGlobalThreads(1);
  models::GmmParams model1;
  RunResult r1 = runner(exp, &model1);

  exec::ThreadPool::SetGlobalThreads(4);
  models::GmmParams model4;
  RunResult r4 = runner(exp, &model4);

  ExpectSameRun(r1, r4);
  ExpectSameModel(model1, model4);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, GmmThreadDeterminism,
    ::testing::Values(
        GmmDeterminismCase{"giraph", &core::RunGmmBsp, false},
        GmmDeterminismCase{"graphlab", &core::RunGmmGas, true},
        GmmDeterminismCase{"spark", &core::RunGmmDataflow, false},
        GmmDeterminismCase{"simsql", &core::RunGmmRelDb, false}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(LdaThreadDeterminism, BspBitIdenticalAt1And4Threads) {
  LdaExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 3;
  exp.topics = 5;
  exp.vocab = 60;
  exp.mean_doc_len = 20;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 30;
  exp.config.seed = 31;

  exec::ThreadPool::SetGlobalThreads(1);
  models::LdaParams model1;
  RunResult r1 = core::RunLdaBsp(exp, &model1);

  exec::ThreadPool::SetGlobalThreads(4);
  models::LdaParams model4;
  RunResult r4 = core::RunLdaBsp(exp, &model4);
  exec::ThreadPool::SetGlobalThreads(1);

  ExpectSameRun(r1, r4);
  ASSERT_EQ(model1.phi.size(), model4.phi.size());
  for (std::size_t t = 0; t < model1.phi.size(); ++t) {
    EXPECT_EQ(model1.phi[t].raw(), model4.phi[t].raw()) << "topic " << t;
  }
}

}  // namespace
}  // namespace mlbench
