#include <gtest/gtest.h>

#include "reldb/sql.h"
#include "reldb/vg_library.h"
#include "sim/cluster_sim.h"

namespace mlbench::reldb {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  SqlTest()
      : sim_(sim::Ec2M2XLargeCluster(3)), db_(&sim_, {}, 7), ctx_(&db_) {
    // data(data_id, dim_id, data_val): 4 points x 2 dims.
    Table data(Schema{"data_id", "dim_id", "data_val"}, 1000.0);
    for (std::int64_t p = 0; p < 4; ++p) {
      for (std::int64_t d = 0; d < 2; ++d) {
        data.Append(Tuple{p, d, static_cast<double>(10 * p + d)});
      }
    }
    db_.Put("data", std::move(data));

    Table cluster(Schema{"clus_id", "pi_prior"}, 1.0);
    for (std::int64_t k = 0; k < 3; ++k) cluster.Append(Tuple{k, 1.0});
    db_.Put("cluster", std::move(cluster));

    Table members(Schema{"data_id", "clus_id"}, 1000.0);
    for (std::int64_t p = 0; p < 4; ++p) members.Append(Tuple{p, p % 2});
    db_.Put("membership[0]", std::move(members));
  }

  Result<Table> Run(const std::string& sql) { return ctx_.Execute(sql); }

  sim::ClusterSim sim_;
  Database db_;
  SqlContext ctx_;
};

TEST_F(SqlTest, SimpleProjection) {
  auto t = Run("SELECT data_id, data_val FROM data WHERE dim_id = 0");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->actual_rows(), 4u);
  EXPECT_EQ(t->schema().name(1), "data_val");
  EXPECT_DOUBLE_EQ(AsDouble(t->rows()[2][1]), 20.0);
}

TEST_F(SqlTest, ArithmeticAndAliases) {
  auto t = Run(
      "SELECT data_val * 2 + 1 AS scaled, sqrt(data_val) AS root "
      "FROM data WHERE dim_id = 1 AND data_id < 2");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->actual_rows(), 2u);
  EXPECT_EQ(t->schema().name(0), "scaled");
  EXPECT_DOUBLE_EQ(AsDouble(t->rows()[1][0]), 11.0 * 2 + 1);
  EXPECT_DOUBLE_EQ(AsDouble(t->rows()[1][1]), std::sqrt(11.0));
}

TEST_F(SqlTest, GroupByAggregates) {
  // The paper's mean_prior view.
  auto t = Run(
      "CREATE VIEW mean_prior (dim_id, dim_val) AS "
      "SELECT dim_id, AVG(data_val) FROM data GROUP BY dim_id");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_TRUE(db_.Exists("mean_prior"));
  ASSERT_EQ(t->actual_rows(), 2u);
  for (const auto& row : t->rows()) {
    std::int64_t dim = AsInt(row[0]);
    EXPECT_DOUBLE_EQ(AsDouble(row[1]), 15.0 + static_cast<double>(dim));
  }
}

TEST_F(SqlTest, CountStarIsLogical) {
  auto t = Run("SELECT dim_id, COUNT(*) AS n FROM data GROUP BY dim_id");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // 4 actual rows per dim x table scale 1000 = logical count.
  for (const auto& row : t->rows()) {
    EXPECT_DOUBLE_EQ(AsDouble(row[1]), 4000.0);
  }
}

TEST_F(SqlTest, EquiJoinFromWhere) {
  auto t = Run(
      "SELECT d.data_id, d.data_val, m.clus_id "
      "FROM data d, membership[0] m "
      "WHERE d.data_id = m.data_id AND d.dim_id = 0");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->actual_rows(), 4u);
  EXPECT_EQ(t->schema().name(2), "clus_id");
  for (const auto& row : t->rows()) {
    EXPECT_EQ(AsInt(row[2]), AsInt(row[0]) % 2);
  }
}

TEST_F(SqlTest, JoinThenGroupBy) {
  auto t = Run(
      "SELECT m.clus_id, SUM(d.data_val) AS total "
      "FROM data d, membership[0] m "
      "WHERE d.data_id = m.data_id "
      "GROUP BY m.clus_id");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->actual_rows(), 2u);
  double sum0 = 0, sum1 = 0;
  for (const auto& row : t->rows()) {
    (AsInt(row[0]) == 0 ? sum0 : sum1) += AsDouble(row[1]);
  }
  // cluster 0: points 0 and 2 -> 0+1+20+21 = 42; cluster 1: 10+11+30+31.
  EXPECT_DOUBLE_EQ(sum0, 42.0);
  EXPECT_DOUBLE_EQ(sum1, 82.0);
}

TEST_F(SqlTest, VgInvocationMatchesThePaperSnippet) {
  DirichletVg diri("clus_id", "pi_prior");
  ctx_.RegisterVg("Dirichlet", &diri);
  // Verbatim structure of the paper's clus_prob[0] initialization.
  auto t = Run(
      "CREATE TABLE clus_prob[0] (clus_id, prob) AS "
      "WITH diri_res AS Dirichlet "
      "    (SELECT clus_id, pi_prior FROM cluster) "
      "SELECT diri_res.out_id, diri_res.prob "
      "FROM diri_res");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_TRUE(db_.Exists("clus_prob[0]"));
  ASSERT_EQ(t->actual_rows(), 3u);
  double total = 0;
  for (const auto& row : t->rows()) total += AsDouble(row[1]);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(SqlTest, RecursiveDefinitionViaBindIteration) {
  DirichletVg diri("clus_id", "diri_para");
  ctx_.RegisterVg("Dirichlet", &diri);
  // The paper's recursive clus_prob[i] definition (counts + prior).
  const std::string tmpl =
      "CREATE TABLE clus_prob[i] (clus_id, prob) AS "
      "WITH diri_res AS Dirichlet "
      "  (SELECT cmem.clus_id, COUNT(*) AS diri_para "
      "   FROM membership[i-1] cmem GROUP BY cmem.clus_id) "
      "SELECT diri_res.out_id, diri_res.prob FROM diri_res";
  std::string bound = SqlContext::BindIteration(tmpl, 1);
  EXPECT_NE(bound.find("clus_prob[1]"), std::string::npos);
  EXPECT_NE(bound.find("membership[0]"), std::string::npos);
  auto t = Run(bound);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_TRUE(db_.Exists("clus_prob[1]"));
  ASSERT_EQ(t->actual_rows(), 2u);  // two occupied clusters
}

TEST_F(SqlTest, VgPerGroupInvocation) {
  CategoricalVg cat("clus_id", "w");
  ctx_.RegisterVg("Categorical", &cat);
  Table probs(Schema{"data_id", "clus_id", "w"}, 1000.0);
  for (std::int64_t p = 0; p < 4; ++p) {
    for (std::int64_t k = 0; k < 3; ++k) {
      probs.Append(Tuple{p, k, k == p % 3 ? 1e9 : 1e-9});
    }
  }
  db_.Put("probs", std::move(probs));
  auto t = Run(
      "WITH draw AS Categorical (SELECT data_id, clus_id, w FROM probs) "
      "PER (data_id) "
      "SELECT draw.out_id FROM draw");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->actual_rows(), 4u);
}

TEST_F(SqlTest, ScaleHintControlsLogicalRows) {
  auto t = Run(
      "SELECT /*+ scale(500) */ data_id, COUNT(*) AS n "
      "FROM data GROUP BY data_id");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_DOUBLE_EQ(t->scale(), 500.0);
}

TEST_F(SqlTest, ErrorsAreStatusesNotCrashes) {
  EXPECT_FALSE(Run("SELECT nope FROM data").ok());
  EXPECT_FALSE(Run("SELECT data_val FROM no_such FROM").ok());
  EXPECT_FALSE(Run("CREATE TABLE x (a, b) AS SELECT data_id FROM data").ok());
  EXPECT_FALSE(
      Run("WITH v AS NotRegistered (SELECT clus_id, pi_prior FROM cluster) "
          "SELECT v.out_id FROM v")
          .ok());
  // Ambiguous unqualified column across a self-join (dim_id survives on
  // both sides; join keys are deduplicated).
  EXPECT_FALSE(Run("SELECT dim_id FROM data a, data b "
                   "WHERE a.data_id = b.data_id AND dim_id > 0")
                   .ok());
}

TEST_F(SqlTest, ChargesSimulatedTime) {
  double before = sim_.elapsed_seconds();
  ASSERT_TRUE(Run("SELECT dim_id, SUM(data_val) AS s FROM data "
                  "GROUP BY dim_id")
                  .ok());
  // At least two MR jobs (scan + aggregate boundary).
  EXPECT_GE(sim_.elapsed_seconds() - before,
            2 * db_.costs().mr_job_launch_s);
}

}  // namespace
}  // namespace mlbench::reldb
