#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "core/gmm_gas.h"
#include "core/gmm_reldb.h"
#include "core/hmm_gas.h"
#include "core/hmm_reldb.h"
#include "core/lasso_gas.h"
#include "core/lasso_reldb.h"
#include "core/lda_gas.h"
#include "core/lda_reldb.h"
#include "exec/thread_pool.h"
#include "gas/engine.h"
#include "gas/graph.h"
#include "reldb/database.h"
#include "reldb/rel.h"
#include "reldb/vg_function.h"
#include "sim/cluster_sim.h"
#include "sim/machine.h"

// Batched-vs-scalar parity suite for DESIGN.md §14: the batched GAS gather
// path (GasProgram::GatherBatch over CSR spans) and the columnar VG path
// (VgFunction::SampleBatch over group-sorted column spans) must be
// bit-identical to their scalar baselines — results, simulated charges and
// RNG streams — at any host thread count.

namespace mlbench {
namespace {

using core::RunResult;
using reldb::AsDouble;
using reldb::Database;
using reldb::Rel;
using reldb::Schema;
using reldb::Table;
using reldb::Tuple;

void ExpectSameRun(const RunResult& a, const RunResult& b) {
  ASSERT_TRUE(a.ok()) << a.status.ToString();
  ASSERT_TRUE(b.ok()) << b.status.ToString();
  EXPECT_EQ(a.init_seconds, b.init_seconds);
  ASSERT_EQ(a.iteration_seconds.size(), b.iteration_seconds.size());
  for (std::size_t i = 0; i < a.iteration_seconds.size(); ++i) {
    EXPECT_EQ(a.iteration_seconds[i], b.iteration_seconds[i]) << "iter " << i;
  }
  EXPECT_EQ(a.peak_machine_bytes, b.peak_machine_bytes);
}

void ExpectSameGmm(const models::GmmParams& a, const models::GmmParams& b) {
  EXPECT_EQ(a.pi.raw(), b.pi.raw());
  ASSERT_EQ(a.mu.size(), b.mu.size());
  for (std::size_t k = 0; k < a.mu.size(); ++k) {
    EXPECT_EQ(a.mu[k].raw(), b.mu[k].raw()) << "mu " << k;
    for (std::size_t r = 0; r < a.sigma[k].rows(); ++r) {
      for (std::size_t c = 0; c < a.sigma[k].cols(); ++c) {
        EXPECT_EQ(a.sigma[k](r, c), b.sigma[k](r, c)) << "sigma " << k;
      }
    }
  }
}

void ExpectSameHmm(const models::HmmParams& a, const models::HmmParams& b) {
  EXPECT_EQ(a.delta0.raw(), b.delta0.raw());
  ASSERT_EQ(a.delta.size(), b.delta.size());
  for (std::size_t s = 0; s < a.delta.size(); ++s) {
    EXPECT_EQ(a.delta[s].raw(), b.delta[s].raw()) << "delta " << s;
    EXPECT_EQ(a.psi[s].raw(), b.psi[s].raw()) << "psi " << s;
  }
}

void ExpectSameLda(const models::LdaParams& a, const models::LdaParams& b) {
  ASSERT_EQ(a.phi.size(), b.phi.size());
  for (std::size_t t = 0; t < a.phi.size(); ++t) {
    EXPECT_EQ(a.phi[t].raw(), b.phi[t].raw()) << "topic " << t;
  }
}

void ExpectSameLasso(const models::LassoState& a,
                     const models::LassoState& b) {
  EXPECT_EQ(a.beta.raw(), b.beta.raw());
  EXPECT_EQ(a.inv_tau2.raw(), b.inv_tau2.raw());
  EXPECT_EQ(a.sigma2, b.sigma2);
}

// ---- GAS driver parity -----------------------------------------------------
//
// Each GAS driver runs once with scalar per-edge gathers at 1 thread (the
// baseline), then batched at 1 and 4 threads. The non-super GMM and the
// Lasso configs give their hub vertices >= kEdgeParallelThreshold edges, so
// the intra-vertex ParallelFor chunk path runs GatherBatch per chunk; the
// rest exercise the serial whole-neighborhood batch.

class GasBatchParity : public ::testing::Test {
 protected:
  void TearDown() override {
    exec::ThreadPool::SetGlobalThreads(1);
    gas::SetDefaultBatchedGather(saved_);
  }

  template <typename Model, typename Runner>
  void ExpectBatchParity(
      Runner runner,
      const std::function<void(const Model&, const Model&)>& same_model) {
    exec::ThreadPool::SetGlobalThreads(1);
    gas::SetDefaultBatchedGather(false);
    Model base_model{};
    RunResult base = runner(&base_model);

    for (int threads : {1, 4}) {
      exec::ThreadPool::SetGlobalThreads(threads);
      gas::SetDefaultBatchedGather(true);
      Model model{};
      RunResult run = runner(&model);
      ExpectSameRun(base, run);
      same_model(base_model, model);
    }
  }

 private:
  bool saved_ = gas::DefaultBatchedGather();
};

core::GmmExperiment SmallGasGmm(bool super, bool imputation) {
  core::GmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 3;
  exp.dim = 3;
  exp.k = 2;
  exp.config.data.logical_per_machine = 1e6;
  // Non-super: 600 data vertices, so each cluster vertex crosses the
  // 512-edge parallel-gather threshold.
  exp.config.data.actual_per_machine = 200;
  exp.config.seed = 77;
  exp.super_vertex = super;
  exp.imputation = imputation;
  return exp;
}

TEST_F(GasBatchParity, GmmHubsUseParallelChunks) {
  core::GmmExperiment exp = SmallGasGmm(false, false);
  ExpectBatchParity<models::GmmParams>(
      [&](models::GmmParams* m) { return core::RunGmmGas(exp, m); },
      ExpectSameGmm);
}

TEST_F(GasBatchParity, GmmSuperVertex) {
  core::GmmExperiment exp = SmallGasGmm(true, false);
  ExpectBatchParity<models::GmmParams>(
      [&](models::GmmParams* m) { return core::RunGmmGas(exp, m); },
      ExpectSameGmm);
}

TEST_F(GasBatchParity, GmmImputation) {
  core::GmmExperiment exp = SmallGasGmm(false, true);
  ExpectBatchParity<models::GmmParams>(
      [&](models::GmmParams* m) { return core::RunGmmGas(exp, m); },
      ExpectSameGmm);
}

TEST_F(GasBatchParity, Hmm) {
  core::HmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.states = 3;
  exp.vocab = 50;
  exp.mean_doc_len = 12;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 20;
  exp.config.seed = 19;
  ExpectBatchParity<models::HmmParams>(
      [&](models::HmmParams* m) { return core::RunHmmGas(exp, m); },
      ExpectSameHmm);
}

TEST_F(GasBatchParity, Lda) {
  core::LdaExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.topics = 4;
  exp.vocab = 60;
  exp.mean_doc_len = 15;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 20;
  exp.config.seed = 31;
  ExpectBatchParity<models::LdaParams>(
      [&](models::LdaParams* m) { return core::RunLdaGas(exp, m); },
      ExpectSameLda);
}

TEST_F(GasBatchParity, LassoCenterUsesParallelChunks) {
  core::LassoExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 3;
  exp.p = 8;
  exp.config.data.actual_per_machine = 200;
  // 600 data supers + 8 model vertices: the center's neighborhood crosses
  // the parallel-gather threshold.
  exp.supers_per_machine = 200;
  exp.config.seed = 7;
  ExpectBatchParity<models::LassoState>(
      [&](models::LassoState* m) { return core::RunLassoGas(exp, m); },
      ExpectSameLasso);
}

// ---- Engine-level default fallback & edge cases ----------------------------

struct ToyData {
  bool hub = false;
  double value = 0;
  double gathered = -1;
};

/// No GatherBatch override: the batched engine must hit the default
/// per-edge fallback loop and still match the scalar engine bitwise.
class ToySum : public gas::GasProgram<ToyData, double> {
 public:
  double Gather(const gas::Graph<ToyData>::Vertex& center,
                const gas::Graph<ToyData>::Vertex& nbr) override {
    (void)center;
    return nbr.data.value;
  }
  double Merge(double a, const double& b) override { return a + b; }
  void Apply(gas::Graph<ToyData>::Vertex& center,
             const double& total) override {
    center.data.gathered = total;
  }
  double GatherFlopsPerEdge() const override { return 2; }
};

gas::Graph<ToyData> ToyStar(int n_data, bool with_isolated) {
  gas::Graph<ToyData> g;
  std::size_t hub = g.AddVertex(0, ToyData{true, 0, -1}, 1.0, 1024, 128);
  for (int i = 1; i <= n_data; ++i) {
    std::size_t v = g.AddVertex(
        i, ToyData{false, 0.125 * static_cast<double>(i), -1}, 1.0, 64, 64);
    g.AddEdge(hub, v);
  }
  if (with_isolated) {
    g.AddVertex(n_data + 1, ToyData{false, 99.0, -1}, 1.0, 64, 64);
  }
  return g;
}

double RunToy(bool batched, int threads, int n_data, bool with_isolated,
              gas::Graph<ToyData>* out_graph) {
  exec::ThreadPool::SetGlobalThreads(threads);
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  *out_graph = ToyStar(n_data, with_isolated);
  gas::GasEngine<ToyData> eng(&sim, out_graph);
  eng.set_batched(batched);
  EXPECT_TRUE(eng.Boot().ok());
  ToySum prog;
  EXPECT_TRUE(eng.RunSweep(prog).ok());
  return sim.elapsed_seconds();
}

TEST(GasBatchFallback, DefaultGatherBatchMatchesScalarBothPaths) {
  // 600 hub edges: the ParallelFor chunk path; 8 edges: the serial batch.
  for (int n_data : {600, 8}) {
    for (int threads : {1, 4}) {
      gas::Graph<ToyData> scalar_g, batch_g;
      double t_scalar = RunToy(false, 1, n_data, false, &scalar_g);
      double t_batch = RunToy(true, threads, n_data, false, &batch_g);
      EXPECT_EQ(t_scalar, t_batch) << n_data << "@" << threads;
      for (std::size_t i = 0; i < scalar_g.size(); ++i) {
        EXPECT_EQ(scalar_g.vertex(i).data.gathered,
                  batch_g.vertex(i).data.gathered)
            << "vertex " << i << " n=" << n_data << " t=" << threads;
      }
    }
  }
  exec::ThreadPool::SetGlobalThreads(1);
}

TEST(GasBatchFallback, ZeroEdgeVertexIsSkippedIdentically) {
  gas::Graph<ToyData> scalar_g, batch_g;
  double t_scalar = RunToy(false, 1, 12, true, &scalar_g);
  double t_batch = RunToy(true, 1, 12, true, &batch_g);
  EXPECT_EQ(t_scalar, t_batch);
  // The isolated vertex never gathers and never applies on either path.
  EXPECT_EQ(scalar_g.vertex(13).data.gathered, -1.0);
  EXPECT_EQ(batch_g.vertex(13).data.gathered, -1.0);
  exec::ThreadPool::SetGlobalThreads(1);
}

// ---- Columnar VG parity ----------------------------------------------------
//
// Each VG-backed reldb driver runs once on the tuple path at 1 thread (the
// baseline), then batched at 1 and 4 threads; all observables must be
// bit-identical.

class VgBatchParity : public ::testing::Test {
 protected:
  void TearDown() override {
    exec::ThreadPool::SetGlobalThreads(1);
    Database::SetDefaultVgBatch(saved_);
  }

  template <typename Model, typename Runner>
  void ExpectVgParity(
      Runner runner,
      const std::function<void(const Model&, const Model&)>& same_model) {
    exec::ThreadPool::SetGlobalThreads(1);
    Database::SetDefaultVgBatch(false);
    Model base_model{};
    RunResult base = runner(&base_model);

    for (int threads : {1, 4}) {
      exec::ThreadPool::SetGlobalThreads(threads);
      Database::SetDefaultVgBatch(true);
      Model model{};
      RunResult run = runner(&model);
      ExpectSameRun(base, run);
      same_model(base_model, model);
    }
  }

 private:
  bool saved_ = Database::DefaultVgBatch();
};

core::GmmExperiment SmallRelGmm(bool super, bool imputation) {
  core::GmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 3;
  exp.dim = 3;
  exp.k = 2;
  exp.config.data.logical_per_machine = 1e6;
  exp.config.data.actual_per_machine = 200;
  exp.config.seed = 77;
  exp.super_vertex = super;
  exp.imputation = imputation;
  return exp;
}

TEST_F(VgBatchParity, GmmMembership) {
  core::GmmExperiment exp = SmallRelGmm(false, false);
  ExpectVgParity<models::GmmParams>(
      [&](models::GmmParams* m) { return core::RunGmmRelDb(exp, m); },
      ExpectSameGmm);
}

TEST_F(VgBatchParity, GmmSuperVertex) {
  core::GmmExperiment exp = SmallRelGmm(true, false);
  ExpectVgParity<models::GmmParams>(
      [&](models::GmmParams* m) { return core::RunGmmRelDb(exp, m); },
      ExpectSameGmm);
}

TEST_F(VgBatchParity, GmmImputation) {
  core::GmmExperiment exp = SmallRelGmm(false, true);
  ExpectVgParity<models::GmmParams>(
      [&](models::GmmParams* m) { return core::RunGmmRelDb(exp, m); },
      ExpectSameGmm);
}

TEST_F(VgBatchParity, HmmWordBased) {
  core::HmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.states = 3;
  exp.vocab = 50;
  exp.mean_doc_len = 12;
  exp.granularity = core::TextGranularity::kWord;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 20;
  exp.config.seed = 19;
  ExpectVgParity<models::HmmParams>(
      [&](models::HmmParams* m) { return core::RunHmmRelDb(exp, m); },
      ExpectSameHmm);
}

TEST_F(VgBatchParity, HmmDocumentBased) {
  core::HmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.states = 3;
  exp.vocab = 50;
  exp.mean_doc_len = 12;
  exp.granularity = core::TextGranularity::kDocument;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 20;
  exp.config.seed = 19;
  ExpectVgParity<models::HmmParams>(
      [&](models::HmmParams* m) { return core::RunHmmRelDb(exp, m); },
      ExpectSameHmm);
}

TEST_F(VgBatchParity, LdaDocumentBased) {
  core::LdaExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.topics = 4;
  exp.vocab = 60;
  exp.mean_doc_len = 15;
  exp.granularity = core::TextGranularity::kDocument;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 20;
  exp.config.seed = 31;
  ExpectVgParity<models::LdaParams>(
      [&](models::LdaParams* m) { return core::RunLdaRelDb(exp, m); },
      ExpectSameLda);
}

TEST_F(VgBatchParity, Lasso) {
  core::LassoExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 3;
  exp.p = 8;
  exp.config.data.actual_per_machine = 100;
  exp.config.seed = 7;
  ExpectVgParity<models::LassoState>(
      [&](models::LassoState* m) { return core::RunLassoRelDb(exp, m); },
      ExpectSameLasso);
}

// ---- VG operator-level edge cases ------------------------------------------

void ExpectSameTable(const Table& a, const Table& b) {
  ASSERT_EQ(a.schema().columns(), b.schema().columns());
  EXPECT_EQ(a.scale(), b.scale());
  ASSERT_EQ(a.rows().size(), b.rows().size());
  for (std::size_t r = 0; r < a.rows().size(); ++r) {
    EXPECT_TRUE(a.rows()[r] == b.rows()[r]) << "row " << r;
  }
}

/// A VG without a SampleBatch override: the batched VgApply must hit the
/// tuple-materializing fallback default and stay bit-identical.
class UnportedVg : public reldb::VgFunction {
 public:
  std::string name() const override { return "unported"; }
  Schema output_schema() const override { return {"id", "draw"}; }
  void BindSchema(const Schema& schema) override {
    id_c_ = schema.IndexOf("id");
    v_c_ = schema.IndexOf("v");
  }
  void Sample(const std::vector<Tuple>& params, const Schema& schema,
              stats::Rng& rng, std::vector<Tuple>* out) override {
    (void)schema;
    double sum = 0;
    for (const auto& row : params) sum += AsDouble(row[v_c_]);
    out->push_back(
        Tuple{params[0][id_c_], sum + rng.NextDouble()});
  }

 private:
  std::size_t id_c_ = 0, v_c_ = 0;
};

class VgApplyEdgeCases : public ::testing::Test {
 protected:
  VgApplyEdgeCases()
      : sim_a_(sim::Ec2M2XLargeCluster(3)),
        sim_b_(sim::Ec2M2XLargeCluster(3)),
        tuples_(&sim_a_, sim::RelDbCosts{}, 42),
        batched_(&sim_b_, sim::RelDbCosts{}, 42) {
    tuples_.set_vg_batch(false);
    batched_.set_vg_batch(true);
  }

  void Load(const Table& t) {
    tuples_.Put("params", t);
    batched_.Put("params", t);
  }

  void ExpectParity(reldb::VgFunction& vg_a, reldb::VgFunction& vg_b,
                    const std::vector<std::string>& group_cols) {
    tuples_.BeginQuery("q");
    Rel a = Rel::Scan(tuples_, "params").VgApply(vg_a, group_cols, 1.0);
    tuples_.EndQuery();
    batched_.BeginQuery("q");
    Rel b = Rel::Scan(batched_, "params").VgApply(vg_b, group_cols, 1.0);
    batched_.EndQuery();
    ExpectSameTable(a.table(), b.table());
    EXPECT_EQ(sim_a_.elapsed_seconds(), sim_b_.elapsed_seconds());
    EXPECT_EQ(tuples_.rng().NextU64(), batched_.rng().NextU64());
  }

  sim::ClusterSim sim_a_, sim_b_;
  Database tuples_, batched_;
};

TEST_F(VgApplyEdgeCases, FallbackDefaultSampleBatch) {
  Table t(Schema{"id", "v"}, 1.0);
  for (std::int64_t i = 0; i < 24; ++i) {
    t.Append(Tuple{i % 5, 0.25 * static_cast<double>(i)});
  }
  Load(t);
  UnportedVg a, b;
  ExpectParity(a, b, {"id"});
}

TEST_F(VgApplyEdgeCases, EmptyInputEmitsNoGroups) {
  Table t(Schema{"id", "v"}, 1.0);
  Load(t);
  UnportedVg a, b;
  ExpectParity(a, b, {"id"});
}

TEST_F(VgApplyEdgeCases, EmptyGroupColsIsOneGroup) {
  Table t(Schema{"id", "v"}, 1.0);
  for (std::int64_t i = 0; i < 9; ++i) {
    t.Append(Tuple{i, 1.5 * static_cast<double>(i)});
  }
  Load(t);
  UnportedVg a, b;
  ExpectParity(a, b, {});
}

}  // namespace
}  // namespace mlbench
