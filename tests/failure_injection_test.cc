#include <gtest/gtest.h>

#include "bsp/engine.h"
#include "dataflow/rdd.h"
#include "gas/engine.h"
#include "sim/cluster_sim.h"

// Failure injection (DESIGN.md testing strategy): shrink the simulated
// machines' RAM and verify every engine surfaces Status::OutOfMemory at
// the right phase instead of crashing, and that failed operations leave
// the memory ledger consistent.

namespace mlbench {
namespace {

sim::ClusterSpec TinyCluster(int machines, double ram_bytes) {
  sim::ClusterSpec spec = sim::Ec2M2XLargeCluster(machines);
  spec.machine.ram_bytes = ram_bytes;
  return spec;
}

TEST(FailureInjection, DataflowCacheReportsOomAndRollsBack) {
  sim::ClusterSim sim(TinyCluster(2, 4.0e9));
  dataflow::ContextOptions opts;
  opts.scale = 1e6;
  dataflow::Context ctx(&sim, opts);
  auto rdd = dataflow::Generate<long long>(
      ctx, 1000, [](int, long long i) { return i; }, 8);
  rdd.Cache();
  auto n = rdd.CountActual();  // 1000 * 1e6 * 8 B = 8 GB > 2 x 4 GB - peers
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsOutOfMemory());
}

TEST(FailureInjection, DataflowPeerBuffersCanExceedTinyRam) {
  // Even an empty job fails when the lifetime buffers don't fit.
  sim::ClusterSim sim(TinyCluster(64, 1.0e9));
  dataflow::ContextOptions opts;
  dataflow::Context ctx(&sim, opts);
  auto rdd = dataflow::Generate<long long>(
      ctx, 4, [](int, long long i) { return i; }, 8);
  ASSERT_TRUE(rdd.CountActual().ok());  // jobs run...
  EXPECT_FALSE(ctx.lifetime_status().ok());  // ...but the app is doomed
  EXPECT_TRUE(ctx.lifetime_status().IsOutOfMemory());
}

TEST(FailureInjection, GasSweepFreesViewsAfterOom) {
  sim::ClusterSim sim(TinyCluster(2, 1.0e9));
  struct VData {
    double v = 0;
  };
  gas::Graph<VData> graph;
  std::size_t hub = graph.AddVertex(0, VData{}, 1.0, 64, 4096);
  for (int i = 1; i <= 32; ++i) {
    std::size_t d = graph.AddVertex(i, VData{}, /*scale=*/1e5, 64, 64);
    graph.AddEdge(hub, d);
  }
  gas::GasEngine<VData> engine(&sim, &graph);
  ASSERT_TRUE(engine.Boot().ok());
  double pinned = sim.used_bytes(0) + sim.used_bytes(1);
  class Prog : public gas::GasProgram<VData, double> {
    double Gather(const gas::Graph<VData>::Vertex&,
                  const gas::Graph<VData>::Vertex& n) override {
      return n.data.v;
    }
    double Merge(double a, const double& b) override { return a + b; }
    void Apply(gas::Graph<VData>::Vertex&, const double&) override {}
  } prog;
  Status st = engine.RunSweep<double>(prog);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  // The failed sweep released whatever views it had reserved.
  EXPECT_DOUBLE_EQ(sim.used_bytes(0) + sim.used_bytes(1), pinned);
}

TEST(FailureInjection, GasBootRollsBackWhenGraphDoesNotFit) {
  sim::ClusterSim sim(TinyCluster(2, 1.0e6));
  struct VData {};
  gas::Graph<VData> graph;
  for (int i = 0; i < 64; ++i) {
    graph.AddVertex(i, VData{}, /*scale=*/1e5, /*state=*/64, 64);
  }
  gas::GasEngine<VData> engine(&sim, &graph);
  Status st = engine.Boot();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_DOUBLE_EQ(sim.used_bytes(0) + sim.used_bytes(1), 0.0);
}

TEST(FailureInjection, BspBootFailsCleanlyOnTinyRam) {
  sim::ClusterSim sim(TinyCluster(4, 1.0e9));  // < 3 peers x 600 MB
  bsp::BspEngine<int, int> engine(&sim);
  engine.AddVertex(0, 0, 1.0, 64);
  Status st = engine.Boot();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
}

TEST(FailureInjection, BspSuperstepOomFreesWorkingSet) {
  sim::ClusterSim sim(TinyCluster(2, 2.5e9));
  bsp::BspEngine<int, double> engine(&sim);
  engine.AddVertex(0, 0, 1.0, 64);
  for (int i = 1; i <= 16; ++i) engine.AddVertex(i, 0, /*scale=*/1e6, 64);
  ASSERT_TRUE(engine.Boot().ok());
  double pinned = sim.used_bytes(0) + sim.used_bytes(1);
  auto flood = [](bsp::BspEngine<int, double>::Vertex& v,
                  const std::vector<double>&,
                  bsp::BspEngine<int, double>::Context& ctx) {
    if (v.id != 0) ctx.Send(v.id, 1.0, 256.0);
  };
  ASSERT_TRUE(engine.RunSuperstep(flood, {}).ok());
  Status st = engine.RunSuperstep(flood, {});
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_DOUBLE_EQ(sim.used_bytes(0) + sim.used_bytes(1), pinned);
}

}  // namespace
}  // namespace mlbench
