#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bsp/engine.h"
#include "dataflow/rdd.h"
#include "gas/engine.h"
#include "reldb/database.h"
#include "sim/cluster_sim.h"
#include "sim/faults.h"

// Failure injection (DESIGN.md testing strategy): shrink the simulated
// machines' RAM and verify every engine surfaces Status::OutOfMemory at
// the right phase instead of crashing, and that failed operations leave
// the memory ledger consistent. The second half drives each engine
// through explicit fault schedules (DESIGN.md §12): recoverable crashes
// charge platform-faithful recovery, stragglers stretch the phase, and
// permanent failures surface Status::Unavailable with the ledger intact.

namespace mlbench {
namespace {

sim::ClusterSpec TinyCluster(int machines, double ram_bytes) {
  sim::ClusterSpec spec = sim::Ec2M2XLargeCluster(machines);
  spec.machine.ram_bytes = ram_bytes;
  return spec;
}

TEST(FailureInjection, DataflowCacheReportsOomAndRollsBack) {
  sim::ClusterSim sim(TinyCluster(2, 4.0e9));
  dataflow::ContextOptions opts;
  opts.scale = 1e6;
  dataflow::Context ctx(&sim, opts);
  auto rdd = dataflow::Generate<long long>(
      ctx, 1000, [](int, long long i) { return i; }, 8);
  rdd.Cache();
  auto n = rdd.CountActual();  // 1000 * 1e6 * 8 B = 8 GB > 2 x 4 GB - peers
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsOutOfMemory());
}

TEST(FailureInjection, DataflowPeerBuffersCanExceedTinyRam) {
  // Even an empty job fails when the lifetime buffers don't fit.
  sim::ClusterSim sim(TinyCluster(64, 1.0e9));
  dataflow::ContextOptions opts;
  dataflow::Context ctx(&sim, opts);
  auto rdd = dataflow::Generate<long long>(
      ctx, 4, [](int, long long i) { return i; }, 8);
  ASSERT_TRUE(rdd.CountActual().ok());  // jobs run...
  EXPECT_FALSE(ctx.lifetime_status().ok());  // ...but the app is doomed
  EXPECT_TRUE(ctx.lifetime_status().IsOutOfMemory());
}

TEST(FailureInjection, GasSweepFreesViewsAfterOom) {
  sim::ClusterSim sim(TinyCluster(2, 1.0e9));
  struct VData {
    double v = 0;
  };
  gas::Graph<VData> graph;
  std::size_t hub = graph.AddVertex(0, VData{}, 1.0, 64, 4096);
  for (int i = 1; i <= 32; ++i) {
    std::size_t d = graph.AddVertex(i, VData{}, /*scale=*/1e5, 64, 64);
    graph.AddEdge(hub, d);
  }
  gas::GasEngine<VData> engine(&sim, &graph);
  ASSERT_TRUE(engine.Boot().ok());
  double pinned = sim.used_bytes(0) + sim.used_bytes(1);
  class Prog : public gas::GasProgram<VData, double> {
    double Gather(const gas::Graph<VData>::Vertex&,
                  const gas::Graph<VData>::Vertex& n) override {
      return n.data.v;
    }
    double Merge(double a, const double& b) override { return a + b; }
    void Apply(gas::Graph<VData>::Vertex&, const double&) override {}
  } prog;
  Status st = engine.RunSweep<double>(prog);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  // The failed sweep released whatever views it had reserved.
  EXPECT_DOUBLE_EQ(sim.used_bytes(0) + sim.used_bytes(1), pinned);
}

TEST(FailureInjection, GasBootRollsBackWhenGraphDoesNotFit) {
  sim::ClusterSim sim(TinyCluster(2, 1.0e6));
  struct VData {};
  gas::Graph<VData> graph;
  for (int i = 0; i < 64; ++i) {
    graph.AddVertex(i, VData{}, /*scale=*/1e5, /*state=*/64, 64);
  }
  gas::GasEngine<VData> engine(&sim, &graph);
  Status st = engine.Boot();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_DOUBLE_EQ(sim.used_bytes(0) + sim.used_bytes(1), 0.0);
}

TEST(FailureInjection, BspBootFailsCleanlyOnTinyRam) {
  sim::ClusterSim sim(TinyCluster(4, 1.0e9));  // < 3 peers x 600 MB
  bsp::BspEngine<int, int> engine(&sim);
  engine.AddVertex(0, 0, 1.0, 64);
  Status st = engine.Boot();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
}

TEST(FailureInjection, BspSuperstepOomFreesWorkingSet) {
  sim::ClusterSim sim(TinyCluster(2, 2.5e9));
  bsp::BspEngine<int, double> engine(&sim);
  engine.AddVertex(0, 0, 1.0, 64);
  for (int i = 1; i <= 16; ++i) engine.AddVertex(i, 0, /*scale=*/1e6, 64);
  ASSERT_TRUE(engine.Boot().ok());
  double pinned = sim.used_bytes(0) + sim.used_bytes(1);
  auto flood = [](bsp::BspEngine<int, double>::Vertex& v,
                  const std::vector<double>&,
                  bsp::BspEngine<int, double>::Context& ctx) {
    if (v.id != 0) ctx.Send(v.id, 1.0, 256.0);
  };
  ASSERT_TRUE(engine.RunSuperstep(flood, {}).ok());
  Status st = engine.RunSuperstep(flood, {});
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_DOUBLE_EQ(sim.used_bytes(0) + sim.used_bytes(1), pinned);
}

// ---- Explicit fault schedules (DESIGN.md §12) -------------------------------

void InstallPlan(sim::ClusterSim* sim, const sim::FaultPlan& plan) {
  sim::FaultSpec spec;
  spec.use_explicit_plan = true;
  spec.explicit_plan = plan;
  sim->SetFaultInjector(spec.MakeInjector());
}

int CountKind(const sim::ClusterSim& sim, sim::FaultKind kind) {
  int n = 0;
  for (const auto& ev : sim.faults()->recoveries()) {
    if (ev.kind == kind) ++n;
  }
  return n;
}

// One fault-free and one faulty BSP run over the same trivial graph;
// returns elapsed simulated seconds.
double RunBspSupersteps(sim::ClusterSim* sim, int supersteps,
                        int checkpoint_interval) {
  bsp::BspEngine<int, double> engine(sim);
  engine.SetCheckpointInterval(checkpoint_interval);
  for (int i = 0; i < 8; ++i) engine.AddVertex(i, 0, 1.0, 64);
  EXPECT_TRUE(engine.Boot().ok());
  auto noop = [](bsp::BspEngine<int, double>::Vertex&,
                 const std::vector<double>&,
                 bsp::BspEngine<int, double>::Context&) {};
  for (int s = 0; s < supersteps; ++s) {
    Status st = engine.RunSuperstep(noop, {});
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return sim->elapsed_seconds();
}

TEST(FaultRecovery, BspCrashPaysRollbackAndReplay) {
  sim::ClusterSim clean(sim::Ec2M2XLargeCluster(2));
  double base = RunBspSupersteps(&clean, 3, /*checkpoint_interval=*/1);

  sim::ClusterSim faulty(sim::Ec2M2XLargeCluster(2));
  sim::FaultPlan plan;
  plan.AddCrash(/*unit=*/1, /*machine=*/0, /*count=*/2);
  InstallPlan(&faulty, plan);
  double walled = RunBspSupersteps(&faulty, 3, /*checkpoint_interval=*/1);

  EXPECT_GT(walled, base) << "crash recovery must cost simulated time";
  ASSERT_EQ(CountKind(faulty, sim::FaultKind::kCrash), 1);
  const auto& ev = faulty.faults()->recoveries().front();
  EXPECT_EQ(ev.site, "bsp:superstep");
  EXPECT_EQ(ev.unit, 1);
  EXPECT_EQ(ev.machine, 0);
  EXPECT_GT(ev.recovery_seconds, 0.0);
  EXPECT_DOUBLE_EQ(faulty.faults()->total_recovery_seconds(),
                   ev.recovery_seconds);
}

TEST(FaultRecovery, BspStragglerAndSendRetriesStretchTheBarrier) {
  sim::ClusterSim clean(sim::Ec2M2XLargeCluster(2));
  double base = RunBspSupersteps(&clean, 2, 0);

  sim::ClusterSim faulty(sim::Ec2M2XLargeCluster(2));
  sim::FaultPlan plan;
  plan.AddStraggler(/*unit=*/0, /*machine=*/1, /*factor=*/4.0);
  plan.AddSendFailure(/*unit=*/1, /*machine=*/0, /*count=*/2);
  InstallPlan(&faulty, plan);
  double walled = RunBspSupersteps(&faulty, 2, 0);

  EXPECT_GT(walled, base);
  EXPECT_EQ(CountKind(faulty, sim::FaultKind::kStraggler), 1);
  EXPECT_EQ(CountKind(faulty, sim::FaultKind::kSendFailure), 1);
  EXPECT_EQ(CountKind(faulty, sim::FaultKind::kCrash), 0);
}

TEST(FaultRecovery, BspPermanentFailureReturnsUnavailable) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  sim::FaultPlan plan;
  plan.AddCrash(/*unit=*/0, /*machine=*/1, /*count=*/5);  // > max_retries
  InstallPlan(&sim, plan);
  bsp::BspEngine<int, double> engine(&sim);
  for (int i = 0; i < 8; ++i) engine.AddVertex(i, 0, 1.0, 64);
  ASSERT_TRUE(engine.Boot().ok());
  double pinned = sim.used_bytes(0) + sim.used_bytes(1);
  auto noop = [](bsp::BspEngine<int, double>::Vertex&,
                 const std::vector<double>&,
                 bsp::BspEngine<int, double>::Context&) {};
  Status st = engine.RunSuperstep(noop, {});
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  // The failed superstep reserved nothing beyond the booted graph.
  EXPECT_DOUBLE_EQ(sim.used_bytes(0) + sim.used_bytes(1), pinned);
}

template <typename VData>
struct NoopGasProgram : gas::GasProgram<VData, double> {
  double Gather(const typename gas::Graph<VData>::Vertex&,
                const typename gas::Graph<VData>::Vertex&) override {
    return 0.0;
  }
  double Merge(double a, const double&) override { return a; }
  void Apply(typename gas::Graph<VData>::Vertex&, const double&) override {}
};

struct GasV {
  double v = 0;
};

// Builds a small ring graph, runs `sweeps` sweeps, returns the crash
// recovery seconds recorded (0 when no crash fired).
double RunGasSweeps(sim::ClusterSim* sim, int sweeps, int snapshot_interval) {
  gas::Graph<GasV> local;
  std::size_t prev = local.AddVertex(0, GasV{}, 1.0, 64, 64);
  std::size_t first = prev;
  for (int i = 1; i < 8; ++i) {
    std::size_t d = local.AddVertex(i, GasV{}, 1.0, 64, 64);
    local.AddEdge(prev, d);
    prev = d;
  }
  local.AddEdge(prev, first);
  gas::GasEngine<GasV> engine(sim, &local);
  engine.SetSnapshotInterval(snapshot_interval);
  EXPECT_TRUE(engine.Boot().ok());
  NoopGasProgram<GasV> prog;
  for (int s = 0; s < sweeps; ++s) {
    Status st = engine.RunSweep<double>(prog);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  double crash_s = 0;
  if (sim->faults() != nullptr) {
    for (const auto& ev : sim->faults()->recoveries()) {
      if (ev.kind == sim::FaultKind::kCrash) crash_s += ev.recovery_seconds;
    }
  }
  return crash_s;
}

TEST(FaultRecovery, GasCrashRestartsAndSnapshotsBoundTheReplay) {
  // Same crash at sweep 2; with per-sweep snapshots the restart replays
  // one sweep, without snapshots it replays all three (GraphLab restarts
  // the job from the last consistent snapshot, or from scratch).
  sim::FaultPlan plan;
  plan.AddCrash(/*unit=*/2, /*machine=*/0, /*count=*/1);

  sim::ClusterSim snap(sim::Ec2M2XLargeCluster(2));
  InstallPlan(&snap, plan);
  double snap_recovery = RunGasSweeps(&snap, 3, /*snapshot_interval=*/1);

  sim::ClusterSim bare(sim::Ec2M2XLargeCluster(2));
  InstallPlan(&bare, plan);
  double bare_recovery = RunGasSweeps(&bare, 3, /*snapshot_interval=*/0);

  EXPECT_GT(snap_recovery, 0.0);
  EXPECT_GT(bare_recovery, snap_recovery)
      << "replay-from-scratch must cost more than replay-from-snapshot";
}

TEST(FaultRecovery, GasPermanentFailureReturnsUnavailable) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  sim::FaultPlan plan;
  plan.AddCrash(/*unit=*/1, /*machine=*/1, /*count=*/5);
  InstallPlan(&sim, plan);
  gas::Graph<GasV> graph;
  for (int i = 0; i < 8; ++i) graph.AddVertex(i, GasV{}, 1.0, 64, 64);
  gas::GasEngine<GasV> engine(&sim, &graph);
  ASSERT_TRUE(engine.Boot().ok());
  double pinned = sim.used_bytes(0) + sim.used_bytes(1);
  NoopGasProgram<GasV> prog;
  ASSERT_TRUE(engine.RunSweep<double>(prog).ok());  // sweep 0: clean
  Status st = engine.RunSweep<double>(prog);        // sweep 1: dead machine
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_DOUBLE_EQ(sim.used_bytes(0) + sim.used_bytes(1), pinned);
}

TEST(FaultRecovery, DataflowCrashEvictsCachesAndLineageRecomputes) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  sim::FaultPlan plan;
  for (std::int64_t job = 0; job < 4; ++job) plan.AddCrash(job, 0, 1);
  InstallPlan(&sim, plan);
  dataflow::ContextOptions opts;
  dataflow::Context ctx(&sim, opts);
  auto rdd = dataflow::Generate<long long>(
      ctx, 64, [](int, long long i) { return i; }, 8);
  rdd.Cache();
  auto first = rdd.CountActual();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // The crashed executor lost its cached partitions; the next action
  // recomputes them from lineage and still succeeds.
  auto second = rdd.CountActual();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(*first, *second);
  EXPECT_TRUE(ctx.fault_status().ok());
  EXPECT_GT(CountKind(sim, sim::FaultKind::kCrash), 0);
  EXPECT_GT(sim.faults()->total_recovery_seconds(), 0.0);
}

TEST(FaultRecovery, DataflowPermanentFailureLatchesFaultStatus) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  sim::FaultPlan plan;
  plan.AddCrash(/*unit=*/0, /*machine=*/1, /*count=*/5);
  InstallPlan(&sim, plan);
  dataflow::ContextOptions opts;
  dataflow::Context ctx(&sim, opts);
  auto rdd = dataflow::Generate<long long>(
      ctx, 64, [](int, long long i) { return i; }, 8);
  ASSERT_TRUE(rdd.CountActual().ok());  // the job itself completes...
  ASSERT_FALSE(ctx.fault_status().ok());  // ...but the app is latched dead
  EXPECT_TRUE(ctx.fault_status().IsUnavailable())
      << ctx.fault_status().ToString();
}

TEST(FaultRecovery, DataflowEvictionRecoversCacheOom) {
  // Same workload as DataflowCacheReportsOomAndRollsBack, but with
  // graceful eviction on: the block manager drops partitions instead of
  // failing the job.
  sim::ClusterSim sim(TinyCluster(2, 4.0e9));
  dataflow::ContextOptions opts;
  opts.scale = 1e6;
  opts.evict_cache_on_pressure = true;
  dataflow::Context ctx(&sim, opts);
  auto rdd = dataflow::Generate<long long>(
      ctx, 1000, [](int, long long i) { return i; }, 8);
  rdd.Cache();
  auto n = rdd.CountActual();
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_GT(*n, 0);
  // A second pass still works (partitions recompute from lineage).
  auto again = rdd.CountActual();
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(*again, *n);
}

TEST(FaultRecovery, RelDbStragglerIsCappedBySpeculativeBackup) {
  auto run_queries = [](sim::ClusterSim* sim) {
    reldb::Database db(sim, sim::RelDbCosts{}, /*seed=*/7);
    db.BeginQuery("q0");
    sim->ChargeCpu(0, 3.0);
    sim->ChargeCpu(1, 9.0);
    double wall = db.EndQuery();
    EXPECT_TRUE(db.fault_status().ok()) << db.fault_status().ToString();
    return wall;
  };
  sim::ClusterSim clean(sim::Ec2M2XLargeCluster(2));
  double base = run_queries(&clean);

  sim::ClusterSim faulty(sim::Ec2M2XLargeCluster(2));
  sim::FaultPlan plan;
  plan.AddStraggler(/*unit=*/0, /*machine=*/0, /*factor=*/10.0);
  InstallPlan(&faulty, plan);
  double walled = run_queries(&faulty);

  // Machine 0's 3 s slows to at most 2x (6 s) and its backup copy mirrors
  // 3 s onto machine 1 (9 -> 12 s): the stage stretches by exactly the
  // mirrored work, not the raw 10x straggle.
  EXPECT_NEAR(walled - base, 3.0, 1e-9);
  EXPECT_EQ(CountKind(faulty, sim::FaultKind::kStraggler), 1);
}

TEST(FaultRecovery, RelDbCrashReExecutesTasksAndRecords) {
  auto run_queries = [](sim::ClusterSim* sim) {
    reldb::Database db(sim, sim::RelDbCosts{}, /*seed=*/7);
    for (int q = 0; q < 3; ++q) {
      db.BeginQuery("q" + std::to_string(q));
      sim->ChargeCpu(0, 5.0);
      sim->ChargeCpu(1, 4.0);
      db.EndQuery();
    }
    EXPECT_TRUE(db.fault_status().ok()) << db.fault_status().ToString();
    return sim->elapsed_seconds();
  };
  sim::ClusterSim clean(sim::Ec2M2XLargeCluster(2));
  double base = run_queries(&clean);

  sim::ClusterSim faulty(sim::Ec2M2XLargeCluster(2));
  sim::FaultPlan plan;
  plan.AddCrash(/*unit=*/1, /*machine=*/0, /*count=*/2);
  plan.AddSendFailure(/*unit=*/2, /*machine=*/1, /*count=*/1);
  InstallPlan(&faulty, plan);
  double walled = run_queries(&faulty);

  EXPECT_GT(walled, base);
  EXPECT_EQ(CountKind(faulty, sim::FaultKind::kCrash), 1);
  EXPECT_EQ(CountKind(faulty, sim::FaultKind::kSendFailure), 1);
}

TEST(FaultRecovery, RelDbPermanentShuffleFailureLatches) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  sim::FaultPlan plan;
  plan.AddSendFailure(/*unit=*/0, /*machine=*/0, /*count=*/9);
  InstallPlan(&sim, plan);
  reldb::Database db(&sim, sim::RelDbCosts{}, /*seed=*/7);
  db.BeginQuery("doomed");
  db.EndQuery();
  ASSERT_FALSE(db.fault_status().ok());
  EXPECT_TRUE(db.fault_status().IsUnavailable())
      << db.fault_status().ToString();
  // RelDb pins no RAM, so the ledger is trivially consistent.
  EXPECT_DOUBLE_EQ(sim.used_bytes(0) + sim.used_bytes(1), 0.0);
}

}  // namespace
}  // namespace mlbench
