#include <gtest/gtest.h>

#include <numeric>

#include "bsp/engine.h"
#include "dataflow/rdd.h"
#include "reldb/database.h"
#include "reldb/rel.h"
#include "sim/cluster_sim.h"

// Engine invariants promised by DESIGN.md's testing strategy, as
// parameterized sweeps: aggregation-path equivalences, message
// conservation, ledger consistency, and cost monotonicity in the logical
// scale.

namespace mlbench {
namespace {

// ---------------------------------------------------------------------------
// Dataflow invariants
// ---------------------------------------------------------------------------

class DataflowScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(DataflowScaleSweep, SimulatedTimeIsMonotoneInScale) {
  auto run = [](double scale) {
    sim::ClusterSim sim(sim::Ec2M2XLargeCluster(4));
    dataflow::ContextOptions opts;
    opts.scale = scale;
    dataflow::Context ctx(&sim, opts);
    auto rdd = dataflow::Generate<long long>(
        ctx, 200, [](int p, long long i) { return p * 7 + i; }, 8);
    auto pairs = rdd.Map([](const long long& x) {
      return std::pair<int, long long>(static_cast<int>(x % 8), x);
    });
    auto reduced = dataflow::ReduceByKey(
        pairs, [](const long long& a, const long long& b) { return a + b; });
    EXPECT_TRUE(reduced.Collect().ok());
    return sim.elapsed_seconds();
  };
  double scale = GetParam();
  EXPECT_GT(run(scale * 10.0), run(scale));
}

TEST_P(DataflowScaleSweep, ResultsAreScaleInvariant) {
  // The *answer* must not depend on the simulated scale, only the cost.
  auto answer = [](double scale) {
    sim::ClusterSim sim(sim::Ec2M2XLargeCluster(4));
    dataflow::ContextOptions opts;
    opts.scale = scale;
    dataflow::Context ctx(&sim, opts);
    auto rdd = dataflow::Generate<long long>(
        ctx, 100, [](int p, long long i) { return p * 3 + i; }, 8);
    return *rdd.Reduce([](const long long& a, const long long& b) {
      return a + b;
    });
  };
  EXPECT_EQ(answer(GetParam()), answer(GetParam() * 100.0));
}

INSTANTIATE_TEST_SUITE_P(Scales, DataflowScaleSweep,
                         ::testing::Values(1.0, 50.0, 1e4));

TEST(DataflowEquivalence, ReduceByKeyEqualsGroupByKeyThenFold) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(3));
  dataflow::ContextOptions opts;
  opts.scale = 10.0;
  dataflow::Context ctx(&sim, opts);
  auto pairs = dataflow::Generate<std::pair<int, long long>>(
      ctx, 300,
      [](int p, long long i) {
        return std::pair<int, long long>(static_cast<int>((p + i) % 9),
                                         i * p + 1);
      },
      16);
  auto reduced = dataflow::ReduceByKey(
      pairs, [](const long long& a, const long long& b) { return a + b; });
  auto grouped = dataflow::GroupByKey(pairs);
  auto folded = dataflow::MapValues(
      grouped, [](const std::vector<long long>& vs) {
        return std::accumulate(vs.begin(), vs.end(), 0LL);
      });
  auto a = dataflow::CollectAsMap(reduced);
  auto b = dataflow::CollectAsMap(folded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (const auto& [k, v] : *a) {
    ASSERT_TRUE(b->contains(k));
    EXPECT_EQ(v, b->at(k)) << "key " << k;
  }
}

TEST(DataflowEquivalence, JoinIsSymmetricInMatchCount) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(3));
  dataflow::ContextOptions opts;
  dataflow::Context ctx(&sim, opts);
  auto left = dataflow::Generate<std::pair<int, int>>(
      ctx, 60,
      [](int p, long long i) {
        return std::pair<int, int>(static_cast<int>(i % 10), p);
      },
      8);
  auto right = dataflow::Generate<std::pair<int, int>>(
      ctx, 40,
      [](int p, long long i) {
        return std::pair<int, int>(static_cast<int>(i % 5), p + 100);
      },
      8);
  auto lr = dataflow::Join(left, right, 1.0).CountActual();
  auto rl = dataflow::Join(right, left, 1.0).CountActual();
  ASSERT_TRUE(lr.ok());
  ASSERT_TRUE(rl.ok());
  EXPECT_EQ(*lr, *rl);
}

// ---------------------------------------------------------------------------
// Relational invariants
// ---------------------------------------------------------------------------

TEST(RelDbEquivalence, SumGroupByMatchesManualFold) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(3));
  reldb::Database db(&sim);
  reldb::Table t(reldb::Schema{"k", "v"}, 100.0);
  double expect[4] = {0, 0, 0, 0};
  for (std::int64_t i = 0; i < 200; ++i) {
    double v = static_cast<double>((i * 13) % 29);
    t.Append(reldb::Tuple{i % 4, v});
    expect[i % 4] += v;
  }
  db.Put("t", std::move(t));
  db.BeginQuery("q");
  auto out = reldb::Rel::Scan(db, "t").GroupBy(
      {"k"}, {{reldb::AggOp::kSum, "v", "s"}}, 1.0);
  db.EndQuery();
  ASSERT_EQ(out.table().actual_rows(), 4u);
  for (const auto& row : out.table().rows()) {
    EXPECT_DOUBLE_EQ(reldb::AsDouble(row[1]),
                     expect[reldb::AsInt(row[0])]);
  }
}

TEST(RelDbEquivalence, JoinCardinalityMatchesNestedLoop) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(3));
  reldb::Database db(&sim);
  reldb::Table a(reldb::Schema{"k", "x"}, 1.0);
  reldb::Table b(reldb::Schema{"k", "y"}, 1.0);
  for (std::int64_t i = 0; i < 30; ++i) a.Append(reldb::Tuple{i % 6, i});
  for (std::int64_t i = 0; i < 18; ++i) b.Append(reldb::Tuple{i % 9, i});
  long long expected = 0;
  for (std::int64_t i = 0; i < 30; ++i) {
    for (std::int64_t j = 0; j < 18; ++j) {
      expected += (i % 6) == (j % 9);
    }
  }
  db.Put("a", std::move(a));
  db.Put("b", std::move(b));
  db.BeginQuery("q");
  auto out = reldb::Rel::Scan(db, "a").HashJoin(reldb::Rel::Scan(db, "b"),
                                                {"k"}, {"k"}, 1.0);
  db.EndQuery();
  EXPECT_EQ(static_cast<long long>(out.table().actual_rows()), expected);
}

class RelDbScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(RelDbScaleSweep, QueryTimeIsMonotoneInScale) {
  auto run = [](double scale) {
    sim::ClusterSim sim(sim::Ec2M2XLargeCluster(3));
    reldb::Database db(&sim);
    reldb::Table t(reldb::Schema{"k", "v"}, scale);
    for (std::int64_t i = 0; i < 100; ++i) {
      t.Append(reldb::Tuple{i % 5, static_cast<double>(i)});
    }
    db.Put("t", std::move(t));
    db.BeginQuery("q");
    reldb::Rel::Scan(db, "t")
        .GroupBy({"k"}, {{reldb::AggOp::kSum, "v", "s"}}, 1.0)
        .Materialize("out");
    return db.EndQuery();
  };
  EXPECT_GT(run(GetParam() * 100.0), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Scales, RelDbScaleSweep,
                         ::testing::Values(10.0, 1e4, 1e6));

// ---------------------------------------------------------------------------
// BSP invariants
// ---------------------------------------------------------------------------

TEST(BspConservation, CombinedSumsEqualUncombinedSums) {
  auto total_at_hub = [](bool combine) {
    sim::ClusterSim sim(sim::Ec2M2XLargeCluster(3));
    bsp::BspEngine<int, double> engine(&sim);
    engine.AddVertex(0, 0, 1.0, 64);
    for (int i = 1; i <= 40; ++i) engine.AddVertex(i, i, 1.0, 64);
    if (combine) {
      engine.SetCombiner(
          [](const double& a, const double& b) { return a + b; });
    }
    EXPECT_TRUE(engine.Boot().ok());
    auto send = [](bsp::BspEngine<int, double>::Vertex& v,
                   const std::vector<double>&,
                   bsp::BspEngine<int, double>::Context& ctx) {
      if (v.id != 0) ctx.Send(0, static_cast<double>(v.data), 8);
    };
    EXPECT_TRUE(engine.RunSuperstep(send, {}).ok());
    double total = 0;
    auto recv = [&total](bsp::BspEngine<int, double>::Vertex& v,
                         const std::vector<double>& inbox,
                         bsp::BspEngine<int, double>::Context&) {
      if (v.id == 0) {
        for (double m : inbox) total += m;
      }
    };
    EXPECT_TRUE(engine.RunSuperstep(recv, {}).ok());
    return total;
  };
  EXPECT_DOUBLE_EQ(total_at_hub(true), total_at_hub(false));
  EXPECT_DOUBLE_EQ(total_at_hub(true), 40.0 * 41.0 / 2.0);
}

TEST(BspConservation, CombiningNeverSlowsTheSuperstep) {
  auto superstep_time = [](bool combine) {
    sim::ClusterSim sim(sim::Ec2M2XLargeCluster(3));
    bsp::BspEngine<int, double> engine(&sim);
    engine.AddVertex(0, 0, 1.0, 64);
    for (int i = 1; i <= 64; ++i) {
      engine.AddVertex(i, i, /*scale=*/1e5, 64);
    }
    if (combine) {
      engine.SetCombiner(
          [](const double& a, const double& b) { return a + b; });
    }
    EXPECT_TRUE(engine.Boot().ok());
    auto send = [](bsp::BspEngine<int, double>::Vertex& v,
                   const std::vector<double>&,
                   bsp::BspEngine<int, double>::Context& ctx) {
      if (v.id != 0) ctx.Send(0, 1.0, 64);
    };
    double t0 = sim.elapsed_seconds();
    EXPECT_TRUE(engine.RunSuperstep(send, {}).ok());
    return sim.elapsed_seconds() - t0;
  };
  EXPECT_LE(superstep_time(true), superstep_time(false));
}

TEST(BspLedger, ShutdownAlwaysRestoresZero) {
  for (int machines : {2, 5, 11}) {
    sim::ClusterSim sim(sim::Ec2M2XLargeCluster(machines));
    bsp::BspEngine<int, int> engine(&sim);
    for (int i = 0; i < 13; ++i) engine.AddVertex(i, i, 3.0, 96);
    ASSERT_TRUE(engine.Boot().ok());
    auto noop = [](bsp::BspEngine<int, int>::Vertex&,
                   const std::vector<int>&,
                   bsp::BspEngine<int, int>::Context&) {};
    ASSERT_TRUE(engine.RunSuperstep(noop, {}).ok());
    engine.Shutdown();
    for (int m = 0; m < machines; ++m) {
      EXPECT_DOUBLE_EQ(sim.used_bytes(m), 0.0)
          << machines << " machines, machine " << m;
    }
  }
}

}  // namespace
}  // namespace mlbench
