#include <gtest/gtest.h>

#include "gas/engine.h"
#include "gas/graph.h"
#include "sim/cluster_sim.h"

namespace mlbench::gas {
namespace {

// A toy "averaging" payload: data vertices hold a value; the hub vertex
// (id 0) collects the sum of its neighbors.
struct VData {
  bool is_hub = false;
  double value = 0;
  double gathered = 0;
};

class SumProgram : public GasProgram<VData, double> {
 public:
  double Gather(const Graph<VData>::Vertex& center,
                const Graph<VData>::Vertex& nbr) override {
    (void)center;
    return nbr.data.value;
  }
  double Merge(double a, const double& b) override { return a + b; }
  void Apply(Graph<VData>::Vertex& center, const double& total) override {
    center.data.gathered = total;
  }
  double GatherFlopsPerEdge() const override { return 2; }
};

Graph<VData> StarGraph(int n_data, double data_scale, double export_bytes) {
  Graph<VData> g;
  std::size_t hub =
      g.AddVertex(0, VData{true, 0, 0}, 1.0, /*state=*/1024, /*export=*/128);
  for (int i = 1; i <= n_data; ++i) {
    std::size_t v = g.AddVertex(i, VData{false, static_cast<double>(i), 0},
                                data_scale, 64, export_bytes);
    g.AddEdge(hub, v);
  }
  return g;
}

TEST(GasGraphTest, VerticesAndEdges) {
  Graph<VData> g = StarGraph(4, 1.0, 64);
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.vertex(0).out.size(), 4u);
  EXPECT_EQ(g.vertex(1).out.size(), 1u);
}

TEST(GasGraphTest, HashPlacementIsDeterministicAndInRange) {
  Graph<VData> g = StarGraph(50, 1.0, 64);
  for (std::size_t i = 0; i < g.size(); ++i) {
    int m = g.MachineOf(i, 7);
    EXPECT_GE(m, 0);
    EXPECT_LT(m, 7);
    EXPECT_EQ(m, g.MachineOf(i, 7));
  }
}

TEST(GasEngineTest, BootPinsGraphAndShutdownFrees) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(3));
  Graph<VData> g = StarGraph(10, 1.0, 64);
  GasEngine<VData> eng(&sim, &g);
  ASSERT_TRUE(eng.Boot().ok());
  double used = 0;
  for (int m = 0; m < 3; ++m) used += sim.used_bytes(m);
  EXPECT_GT(used, 0.0);
  eng.Shutdown();
  used = 0;
  for (int m = 0; m < 3; ++m) used += sim.used_bytes(m);
  EXPECT_DOUBLE_EQ(used, 0.0);
}

TEST(GasEngineTest, BootFailsAboveBootableLimit) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(100));
  Graph<VData> g = StarGraph(10, 1.0, 64);
  GasEngine<VData> eng(&sim, &g);
  Status st = eng.Boot();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);

  sim::ClusterSim sim96(sim::Ec2M2XLargeCluster(96));
  Graph<VData> g96 = StarGraph(10, 1.0, 64);
  GasEngine<VData> eng96(&sim96, &g96);
  EXPECT_TRUE(eng96.Boot().ok());
}

TEST(GasEngineTest, SweepRunsGatherApply) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Graph<VData> g = StarGraph(4, 1.0, 64);
  GasEngine<VData> eng(&sim, &g);
  ASSERT_TRUE(eng.Boot().ok());
  SumProgram prog;
  ASSERT_TRUE(eng.RunSweep(prog).ok());
  EXPECT_DOUBLE_EQ(g.vertex(0).data.gathered, 1 + 2 + 3 + 4);
  // Each data vertex gathered the hub's value (0).
  EXPECT_DOUBLE_EQ(g.vertex(1).data.gathered, 0.0);
}

TEST(GasEngineTest, SweepAdvancesClockAndFreesViews) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Graph<VData> g = StarGraph(4, 1e6, 64);
  GasEngine<VData> eng(&sim, &g);
  ASSERT_TRUE(eng.Boot().ok());
  double before_mem = sim.used_bytes(0) + sim.used_bytes(1);
  SumProgram prog;
  double t0 = sim.elapsed_seconds();
  ASSERT_TRUE(eng.RunSweep(prog).ok());
  EXPECT_GT(sim.elapsed_seconds(), t0);
  EXPECT_DOUBLE_EQ(sim.used_bytes(0) + sim.used_bytes(1), before_mem);
}

TEST(GasEngineTest, NaiveModelCopiesExhaustMemory) {
  // The paper's naive GMM: 10M logical data vertices per machine each
  // materializing a multi-KB model view -> gather views exceed RAM.
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Graph<VData> g = StarGraph(20, /*data_scale=*/1e6, /*export=*/64);
  // Hub exports a 9 KB model view that every logical data vertex copies.
  g.vertex(0).export_bytes = 9000;
  GasEngine<VData> eng(&sim, &g);
  ASSERT_TRUE(eng.Boot().ok());
  SumProgram prog;
  Status st = eng.RunSweep(prog);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  // Failed sweep must release its views (graph stays pinned).
  eng.Shutdown();
  EXPECT_DOUBLE_EQ(sim.used_bytes(0) + sim.used_bytes(1), 0.0);
}

TEST(GasEngineTest, SuperVerticesFitWhereNaiveFails) {
  // Same logical data, grouped into 20 super vertices of scale 1: only 20
  // model copies materialize.
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Graph<VData> g = StarGraph(20, /*data_scale=*/1.0, /*export=*/64);
  g.vertex(0).export_bytes = 9000;
  for (std::size_t i = 1; i < g.size(); ++i) {
    g.vertex(i).state_bytes = 1e6 * 64;  // the grouped points live inside
  }
  GasEngine<VData> eng(&sim, &g);
  ASSERT_TRUE(eng.Boot().ok());
  SumProgram prog;
  EXPECT_TRUE(eng.RunSweep(prog).ok());
}

TEST(GasEngineTest, MapReduceVertices) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Graph<VData> g = StarGraph(5, 1.0, 64);
  GasEngine<VData> eng(&sim, &g);
  ASSERT_TRUE(eng.Boot().ok());
  double sum = eng.MapReduceVertices<double>(
      [](const Graph<VData>::Vertex& v) { return v.data.value; },
      [](double a, double b) { return a + b; }, 0.0);
  EXPECT_DOUBLE_EQ(sum, 15.0);
}

TEST(GasEngineTest, TransformVertices) {
  sim::ClusterSim sim(sim::Ec2M2XLargeCluster(2));
  Graph<VData> g = StarGraph(5, 1.0, 64);
  GasEngine<VData> eng(&sim, &g);
  ASSERT_TRUE(eng.Boot().ok());
  eng.TransformVertices(
      [](Graph<VData>::Vertex& v) { v.data.value *= 2; });
  EXPECT_DOUBLE_EQ(g.vertex(3).data.value, 6.0);
}

}  // namespace
}  // namespace mlbench::gas
