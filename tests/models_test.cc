#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "models/gmm.h"
#include "models/hmm.h"
#include "models/imputation.h"
#include "models/lasso.h"
#include "models/lda.h"
#include "stats/distributions.h"

namespace mlbench::models {
namespace {

// ---------------------------------------------------------------------------
// GMM
// ---------------------------------------------------------------------------

std::vector<Vector> TwoClusterData(stats::Rng& rng, int n_per, double sep) {
  std::vector<Vector> data;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < n_per; ++i) {
      Vector x(2);
      for (int d = 0; d < 2; ++d) {
        x[d] = stats::SampleNormal(rng, c == 0 ? -sep : sep, 1.0);
      }
      data.push_back(std::move(x));
    }
  }
  return data;
}

TEST(GmmTest, EmpiricalHyperMatchesDataMoments) {
  stats::Rng rng(1);
  auto data = TwoClusterData(rng, 2000, 3.0);
  GmmHyper h = EmpiricalHyper(2, data);
  EXPECT_NEAR(h.mu0[0], 0.0, 0.15);
  // Per-dimension variance ~ sep^2 + 1 = 10.
  EXPECT_NEAR(h.psi(0, 0), 10.0, 1.0);
  EXPECT_DOUBLE_EQ(h.v, 4.0);
}

TEST(GmmTest, SuffStatsAddAndMerge) {
  GmmSuffStats a(2), b(2);
  a.Add(Vector{1, 2});
  b.Add(Vector{3, 4});
  b.Add(Vector{5, 6});
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.n, 3.0);
  EXPECT_DOUBLE_EQ(a.sum_x[0], 9.0);
  EXPECT_DOUBLE_EQ(a.sum_outer(1, 1), 4.0 + 16.0 + 36.0);
}

TEST(GmmTest, MembershipPrefersNearCluster) {
  stats::Rng rng(2);
  GmmParams p;
  p.pi = Vector{0.5, 0.5};
  p.mu = {Vector{-3, -3}, Vector{3, 3}};
  p.sigma = {Matrix::Identity(2), Matrix::Identity(2)};
  int near = 0;
  for (int i = 0; i < 200; ++i) {
    auto c = SampleMembership(rng, Vector{3.1, 2.9}, p);
    ASSERT_TRUE(c.ok());
    near += *c == 1;
  }
  EXPECT_GT(near, 195);
}

TEST(GmmTest, GibbsChainRecoversSeparatedClusters) {
  stats::Rng rng(3);
  auto data = TwoClusterData(rng, 400, 4.0);
  GmmHyper hyper = EmpiricalHyper(2, data);
  auto params = SamplePrior(rng, hyper);
  ASSERT_TRUE(params.ok());
  std::vector<std::size_t> memb(data.size());

  for (int iter = 0; iter < 30; ++iter) {
    std::vector<GmmSuffStats> stats(2, GmmSuffStats(2));
    std::vector<double> counts(2, 0);
    for (std::size_t j = 0; j < data.size(); ++j) {
      auto c = SampleMembership(rng, data[j], *params);
      ASSERT_TRUE(c.ok());
      memb[j] = *c;
      stats[*c].Add(data[j]);
      counts[*c] += 1;
    }
    for (int k = 0; k < 2; ++k) {
      auto post = SampleClusterPosterior(rng, hyper, stats[k]);
      ASSERT_TRUE(post.ok());
      params->mu[k] = post->first;
      params->sigma[k] = post->second;
    }
    params->pi = SampleMixingProportions(rng, hyper, counts);
  }
  // The two component means must sit near (-4,-4) and (4,4) in some order.
  double lo = std::min(params->mu[0][0], params->mu[1][0]);
  double hi = std::max(params->mu[0][0], params->mu[1][0]);
  EXPECT_NEAR(lo, -4.0, 0.5);
  EXPECT_NEAR(hi, 4.0, 0.5);
  EXPECT_NEAR(params->pi[0], 0.5, 0.1);
}

TEST(GmmTest, FlopDeclarationsScale) {
  EXPECT_GT(MembershipFlops(10, 100), 50 * MembershipFlops(10, 10));
  EXPECT_GT(ClusterUpdateFlops(100), 100 * ClusterUpdateFlops(10));
  EXPECT_GT(SuffStatFlops(10), 0.0);
}

// ---------------------------------------------------------------------------
// Bayesian Lasso
// ---------------------------------------------------------------------------

TEST(LassoTest, AccumulateBuildsGramMatrix) {
  LassoSuffStats stats;
  AccumulateLasso(Vector{1, 2}, 3.0, &stats);
  AccumulateLasso(Vector{0, 1}, -1.0, &stats);
  EXPECT_DOUBLE_EQ(stats.n, 2.0);
  EXPECT_DOUBLE_EQ(stats.xtx(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(stats.xtx(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(stats.xtx(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(stats.xty[1], 5.0);
  EXPECT_DOUBLE_EQ(stats.yty, 10.0);
}

TEST(LassoTest, ResidualSumOfSquaresMatchesDirect) {
  stats::Rng rng(4);
  LassoSuffStats stats;
  std::vector<std::pair<Vector, double>> data;
  Vector beta{0.5, -1.0, 2.0};
  for (int i = 0; i < 50; ++i) {
    Vector x(3);
    for (auto& v : x) v = stats::SampleNormal(rng, 0, 1);
    double y = stats::SampleNormal(rng, linalg::Dot(beta, x), 0.1);
    AccumulateLasso(x, y, &stats);
    data.emplace_back(std::move(x), y);
  }
  double direct = 0;
  for (const auto& [x, y] : data) {
    double r = y - linalg::Dot(beta, x);
    direct += r * r;
  }
  EXPECT_NEAR(ResidualSumOfSquares(stats, beta), direct, 1e-8);
}

TEST(LassoTest, ChainRecoversSparseSignal) {
  stats::Rng rng(5);
  const std::size_t p = 10;
  LassoHyper hyper{p, 1.0};
  Vector true_beta(p);
  true_beta[2] = 3.0;
  true_beta[7] = -2.0;
  LassoSuffStats stats;
  for (int i = 0; i < 400; ++i) {
    Vector x(p);
    for (auto& v : x) v = stats::SampleNormal(rng, 0, 1);
    double y = stats::SampleNormal(rng, linalg::Dot(true_beta, x), 0.5);
    AccumulateLasso(x, y, &stats);
  }
  auto state = InitLasso(rng, hyper);
  ASSERT_TRUE(state.ok());
  for (int iter = 0; iter < 50; ++iter) {
    for (std::size_t j = 0; j < p; ++j) {
      state->inv_tau2[j] =
          SampleInvTau2(rng, hyper, state->sigma2, state->beta[j]);
    }
    auto beta = SampleBeta(rng, stats, state->inv_tau2, state->sigma2);
    ASSERT_TRUE(beta.ok());
    state->beta = *beta;
    double sse = ResidualSumOfSquares(stats, state->beta);
    state->sigma2 =
        SampleSigma2(rng, hyper, stats, state->beta, state->inv_tau2, sse);
  }
  EXPECT_NEAR(state->beta[2], 3.0, 0.3);
  EXPECT_NEAR(state->beta[7], -2.0, 0.3);
  EXPECT_NEAR(state->beta[0], 0.0, 0.3);
  EXPECT_NEAR(state->sigma2, 0.25, 0.15);
}

// ---------------------------------------------------------------------------
// HMM
// ---------------------------------------------------------------------------

TEST(HmmTest, CountsMergeElementwise) {
  HmmCounts a(2, 3), b(2, 3);
  a.f[0][1] = 2;
  b.f[0][1] = 3;
  b.g[1] = 1;
  b.h[1][0] = 4;
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.f[0][1], 5.0);
  EXPECT_DOUBLE_EQ(a.g[1], 1.0);
  EXPECT_DOUBLE_EQ(a.h[1][0], 4.0);
}

TEST(HmmTest, AlternatingUpdateOnlyTouchesMatchingParity) {
  stats::Rng rng(6);
  HmmHyper hyper{2, 5, 1.0, 1.0};
  HmmParams params = SampleHmmPrior(rng, hyper);
  HmmDocument doc;
  doc.words = {0, 1, 2, 3, 4, 0, 1, 2};
  InitHmmStates(rng, 2, &doc);
  auto before = doc.states;
  ResampleHmmStates(rng, params, /*iteration=*/0, &doc);
  for (std::size_t pos = 0; pos < doc.words.size(); ++pos) {
    if ((0 + pos) % 2 != 1) {
      EXPECT_EQ(doc.states[pos], before[pos]) << "pos " << pos;
    }
  }
}

TEST(HmmTest, CountsMatchDocument) {
  HmmDocument doc;
  doc.words = {3, 1, 3};
  doc.states = {0, 1, 0};
  HmmCounts counts(2, 5);
  AccumulateHmmCounts(doc, &counts);
  EXPECT_DOUBLE_EQ(counts.g[0], 1.0);
  EXPECT_DOUBLE_EQ(counts.f[0][3], 2.0);
  EXPECT_DOUBLE_EQ(counts.f[1][1], 1.0);
  EXPECT_DOUBLE_EQ(counts.h[0][1], 1.0);
  EXPECT_DOUBLE_EQ(counts.h[1][0], 1.0);
}

TEST(HmmTest, PosteriorRowsAreDistributions) {
  stats::Rng rng(7);
  HmmHyper hyper{3, 6, 1.0, 0.5};
  HmmCounts counts(3, 6);
  counts.f[1][2] = 50;
  counts.g[0] = 10;
  counts.h[2][1] = 20;
  HmmParams p = SampleHmmPosterior(rng, hyper, counts);
  EXPECT_NEAR(p.delta0.Sum(), 1.0, 1e-9);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_NEAR(p.delta[s].Sum(), 1.0, 1e-9);
    EXPECT_NEAR(p.psi[s].Sum(), 1.0, 1e-9);
  }
  // Heavy f(2|s=1) count dominates that emission row.
  EXPECT_GT(p.psi[1][2], 0.8);
}

TEST(HmmTest, ChainSeparatesDisjointVocabularies) {
  // Two states emitting disjoint word ranges with strong self-transition:
  // the learned emission rows must concentrate on one range each.
  stats::Rng rng(8);
  HmmHyper hyper{2, 10, 0.5, 0.1};
  // Build synthetic docs from a known HMM.
  std::vector<HmmDocument> docs(60);
  for (auto& doc : docs) {
    int s = 0;
    for (int w = 0; w < 40; ++w) {
      if (rng.NextDouble() < 0.1) s = 1 - s;
      doc.words.push_back(static_cast<std::uint32_t>(
          s * 5 + rng.NextBounded(5)));
    }
    InitHmmStates(rng, 2, &doc);
  }
  HmmParams params = SampleHmmPrior(rng, hyper);
  for (int iter = 0; iter < 60; ++iter) {
    HmmCounts counts(2, 10);
    for (auto& doc : docs) {
      ResampleHmmStates(rng, params, iter, &doc);
      AccumulateHmmCounts(doc, &counts);
    }
    params = SampleHmmPosterior(rng, hyper, counts);
  }
  // Each state's emission mass must concentrate on one half of the vocab.
  for (int s = 0; s < 2; ++s) {
    double low = 0, high = 0;
    for (int w = 0; w < 5; ++w) low += params.psi[s][w];
    for (int w = 5; w < 10; ++w) high += params.psi[s][w];
    EXPECT_GT(std::max(low, high), 0.85) << "state " << s;
  }
}

// ---------------------------------------------------------------------------
// LDA
// ---------------------------------------------------------------------------

TEST(LdaTest, InitAssignsTopicsAndUniformTheta) {
  stats::Rng rng(9);
  LdaHyper hyper{4, 20, 0.5, 0.1};
  LdaDocument doc;
  doc.words = {1, 2, 3, 4, 5};
  InitLdaDocument(rng, hyper, &doc);
  EXPECT_EQ(doc.topics.size(), 5u);
  EXPECT_NEAR(doc.theta.Sum(), 1.0, 1e-9);
  for (auto t : doc.topics) EXPECT_LT(t, 4);
}

TEST(LdaTest, ResampleAccumulatesCounts) {
  stats::Rng rng(10);
  LdaHyper hyper{2, 6, 0.5, 0.1};
  LdaParams params = SampleLdaPrior(rng, hyper);
  LdaDocument doc;
  doc.words = {0, 1, 2, 3};
  InitLdaDocument(rng, hyper, &doc);
  LdaCounts counts(2, 6);
  ResampleLdaDocument(rng, hyper, params, &doc, &counts);
  double total = 0;
  for (const auto& row : counts.g) total += row.Sum();
  EXPECT_DOUBLE_EQ(total, 4.0);
  EXPECT_NEAR(doc.theta.Sum(), 1.0, 1e-9);
}

TEST(LdaTest, ChainImprovesLogLikelihood) {
  stats::Rng rng(11);
  LdaHyper hyper{2, 10, 0.5, 0.1};
  // Two topics over disjoint vocab halves; docs are topic-pure.
  std::vector<LdaDocument> docs(40);
  for (std::size_t j = 0; j < docs.size(); ++j) {
    int topic = j % 2;
    for (int w = 0; w < 30; ++w) {
      docs[j].words.push_back(
          static_cast<std::uint32_t>(topic * 5 + rng.NextBounded(5)));
    }
    InitLdaDocument(rng, hyper, &docs[j]);
  }
  LdaParams params = SampleLdaPrior(rng, hyper);
  double ll_first = 0, ll_last = 0;
  for (int iter = 0; iter < 40; ++iter) {
    LdaCounts counts(2, 10);
    double ll = 0;
    for (auto& doc : docs) {
      ResampleLdaDocument(rng, hyper, params, &doc, &counts);
      ll += LdaDocLogLikelihood(doc, params);
    }
    params = SampleLdaPosterior(rng, hyper, counts);
    if (iter == 0) ll_first = ll;
    ll_last = ll;
  }
  EXPECT_GT(ll_last, ll_first + 100.0);
  // Topics separate the two vocab halves.
  for (int t = 0; t < 2; ++t) {
    double low = 0, high = 0;
    for (int w = 0; w < 5; ++w) low += params.phi[t][w];
    for (int w = 5; w < 10; ++w) high += params.phi[t][w];
    EXPECT_GT(std::max(low, high), 0.9) << "topic " << t;
  }
}

TEST(LdaTest, ModelBytesMatchShape) {
  LdaHyper hyper{100, 10000, 0.5, 0.1};
  EXPECT_DOUBLE_EQ(LdaModelBytes(hyper), 8.0 * 100 * 10000);
  HmmHyper hh{20, 10000, 1.0, 0.1};
  EXPECT_DOUBLE_EQ(HmmModelBytes(hh), 8.0 * (20.0 * 10000 + 400 + 20));
}

// ---------------------------------------------------------------------------
// Imputation
// ---------------------------------------------------------------------------

TEST(ImputationTest, CensorMasksExpectedFraction) {
  stats::Rng rng(12);
  int censored = 0, total = 0;
  for (int i = 0; i < 500; ++i) {
    auto cp = Censor(rng, Vector(10, 1.0), 0.5);
    for (bool m : cp.missing) {
      censored += m;
      ++total;
    }
  }
  EXPECT_NEAR(censored / static_cast<double>(total), 0.5, 0.03);
}

TEST(ImputationTest, NoMissingIsNoOp) {
  stats::Rng rng(13);
  CensoredPoint cp;
  cp.x = Vector{1, 2};
  cp.missing = {false, false};
  ASSERT_TRUE(
      ImputeMissing(rng, Vector{0, 0}, Matrix::Identity(2), &cp).ok());
  EXPECT_DOUBLE_EQ(cp.x[0], 1.0);
  EXPECT_DOUBLE_EQ(cp.x[1], 2.0);
}

TEST(ImputationTest, FullyMissingDrawsFromMarginal) {
  stats::Rng rng(14);
  Vector mu{5, -5};
  Matrix sigma = Matrix::Identity(2) * 0.01;
  CensoredPoint cp;
  cp.x = Vector{0, 0};
  cp.missing = {true, true};
  ASSERT_TRUE(ImputeMissing(rng, mu, sigma, &cp).ok());
  EXPECT_NEAR(cp.x[0], 5.0, 0.5);
  EXPECT_NEAR(cp.x[1], -5.0, 0.5);
}

TEST(ImputationTest, ConditionalMeanTracksCorrelation) {
  // With correlation 0.9 and observed x2 = 2, E[x1 | x2] = 1.8.
  stats::Rng rng(15);
  Vector mu{0, 0};
  Matrix sigma(2, 2);
  sigma(0, 0) = sigma(1, 1) = 1.0;
  sigma(0, 1) = sigma(1, 0) = 0.9;
  double sum = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    CensoredPoint cp;
    cp.x = Vector{0, 2.0};
    cp.missing = {true, false};
    ASSERT_TRUE(ImputeMissing(rng, mu, sigma, &cp).ok());
    sum += cp.x[0];
  }
  EXPECT_NEAR(sum / n, 1.8, 0.03);
}

TEST(ImputationTest, ImputedValuesReduceRmseVersusZeroFill) {
  stats::Rng rng(16);
  Vector mu{3, 3, 3};
  Matrix sigma = Matrix::Identity(3);
  sigma(0, 1) = sigma(1, 0) = 0.7;
  double rmse_imputed = 0, rmse_zero = 0;
  int count = 0;
  for (int i = 0; i < 2000; ++i) {
    auto truth = stats::SampleMultivariateNormal(rng, mu, sigma);
    ASSERT_TRUE(truth.ok());
    CensoredPoint cp = Censor(rng, *truth, 0.5);
    auto zero_fill = cp;
    ASSERT_TRUE(ImputeMissing(rng, mu, sigma, &cp).ok());
    for (std::size_t d = 0; d < 3; ++d) {
      if (!cp.missing[d]) continue;
      rmse_imputed += std::pow(cp.x[d] - (*truth)[d], 2);
      rmse_zero += std::pow(zero_fill.x[d] - (*truth)[d], 2);
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_LT(rmse_imputed / count, 0.7 * rmse_zero / count);
}

}  // namespace
}  // namespace mlbench::models
