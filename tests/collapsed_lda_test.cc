#include <gtest/gtest.h>

#include <cmath>

#include "models/collapsed_lda.h"
#include "stats/rng.h"

namespace mlbench::models {
namespace {

/// Corpus with two planted topics over disjoint vocabulary halves.
std::vector<LdaDocument> PlantedCorpus(std::size_t vocab_half, int docs,
                                       int words, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<LdaDocument> out(docs);
  for (int j = 0; j < docs; ++j) {
    int topic = j % 2;
    for (int w = 0; w < words; ++w) {
      out[j].words.push_back(static_cast<std::uint32_t>(
          topic * vocab_half + rng.NextBounded(vocab_half)));
    }
  }
  return out;
}

TEST(CollapsedLdaTest, CountsStayConsistentAcrossSweeps) {
  LdaHyper hyper{3, 12, 0.5, 0.1};
  CollapsedLda sampler(hyper, PlantedCorpus(6, 20, 30, 1), 2);
  double before = 0;
  for (const auto& doc : sampler.docs()) before += doc.words.size();
  for (int i = 0; i < 5; ++i) sampler.Sweep();
  // Phi rows remain distributions regardless of the chain state.
  LdaParams phi = sampler.EstimatePhi();
  for (const auto& row : phi.phi) {
    EXPECT_NEAR(row.Sum(), 1.0, 1e-9);
    for (double v : row) EXPECT_GT(v, 0.0);
  }
  double after = 0;
  for (const auto& doc : sampler.docs()) after += doc.words.size();
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(CollapsedLdaTest, RecoversPlantedTopics) {
  LdaHyper hyper{2, 12, 0.5, 0.1};
  CollapsedLda sampler(hyper, PlantedCorpus(6, 40, 40, 3), 4);
  for (int i = 0; i < 30; ++i) sampler.Sweep();
  LdaParams phi = sampler.EstimatePhi();
  for (int t = 0; t < 2; ++t) {
    double low = 0, high = 0;
    for (int w = 0; w < 6; ++w) low += phi.phi[t][w];
    for (int w = 6; w < 12; ++w) high += phi.phi[t][w];
    EXPECT_GT(std::max(low, high), 0.9) << "topic " << t;
  }
}

TEST(CollapsedLdaTest, LogLikelihoodImprovesFromRandomInit) {
  LdaHyper hyper{2, 12, 0.5, 0.1};
  CollapsedLda sampler(hyper, PlantedCorpus(6, 40, 40, 5), 6);
  double first = sampler.TokenLogLikelihood();
  for (int i = 0; i < 25; ++i) sampler.Sweep();
  EXPECT_GT(sampler.TokenLogLikelihood(), first + 50.0);
}

TEST(CollapsedLdaTest, CollapsedMixesFasterThanNonCollapsed) {
  // The paper's stated reason the collapsed sampler is "standard": after
  // the same few sweeps from the same init, the collapsed chain's
  // likelihood is at least as good as the non-collapsed one's.
  LdaHyper hyper{2, 12, 0.5, 0.1};
  auto corpus = PlantedCorpus(6, 40, 40, 7);

  CollapsedLda collapsed(hyper, corpus, 8);
  for (int i = 0; i < 5; ++i) collapsed.Sweep();

  stats::Rng rng(8);
  auto docs = corpus;
  for (auto& d : docs) InitLdaDocument(rng, hyper, &d);
  LdaParams params = SampleLdaPrior(rng, hyper);
  for (int i = 0; i < 5; ++i) {
    LdaCounts counts(hyper.topics, hyper.vocab);
    for (auto& d : docs) ResampleLdaDocument(rng, hyper, params, &d, &counts);
    params = SampleLdaPosterior(rng, hyper, counts);
  }
  double ll_nc = 0;
  for (const auto& d : docs) ll_nc += LdaDocLogLikelihood(d, params);
  EXPECT_GE(collapsed.TokenLogLikelihood(), ll_nc - 25.0);
}

TEST(CollapsedLdaTest, ApproximateParallelSweepStillConverges) {
  // The concurrent-update shortcut the paper distrusts: it does converge
  // on easy corpora, but through a biased trajectory. We check both that
  // it works here and that it differs from the exact chain.
  LdaHyper hyper{2, 12, 0.5, 0.1};
  auto corpus = PlantedCorpus(6, 40, 40, 9);
  CollapsedLda exact(hyper, corpus, 10);
  CollapsedLda approx(hyper, corpus, 10);
  exact.Sweep();
  approx.ApproximateParallelSweep();
  // Identical seeds, different update rules: the very first sweep already
  // diverges somewhere (the exact chain sees its own in-sweep updates).
  bool any_diff = false;
  for (std::size_t d = 0; d < exact.docs().size() && !any_diff; ++d) {
    any_diff = exact.docs()[d].topics != approx.docs()[d].topics;
  }
  EXPECT_TRUE(any_diff);
  for (int i = 0; i < 29; ++i) {
    exact.Sweep();
    approx.ApproximateParallelSweep();
  }
  LdaParams pa = approx.EstimatePhi();
  for (int t = 0; t < 2; ++t) {
    double low = 0, high = 0;
    for (int w = 0; w < 6; ++w) low += pa.phi[t][w];
    for (int w = 6; w < 12; ++w) high += pa.phi[t][w];
    EXPECT_GT(std::max(low, high), 0.85) << "topic " << t;
  }
}

}  // namespace
}  // namespace mlbench::models
