#include "mlint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

/// Per-rule fixtures for mlint (tools/mlint). Every rule gets a positive
/// snippet (must fire) and a negative one (must stay quiet), plus coverage
/// of suppression comments, baseline load/match semantics, and the JSON
/// reporter schema. Fixtures are raw strings, which also proves the
/// tokenizer strips literals: linting *this* file finds nothing.

namespace {

using mlint::Finding;
using mlint::LintContent;
using mlint::LintResult;

int CountRule(const LintResult& r, const std::string& rule) {
  int n = 0;
  for (const auto& f : r.findings) n += f.rule == rule ? 1 : 0;
  return n;
}

// ---- Rule 1: nondet-random -------------------------------------------------

TEST(MlintNondetRandom, FlagsEntropySources) {
  auto r = LintContent("src/core/x.cc", R"cc(
    #include <random>
    void f() {
      std::random_device rd;
      int a = rand() % 7;
      long t = time(nullptr);
      srand(42);
    }
  )cc");
  EXPECT_EQ(CountRule(r, "nondet-random"), 4) << mlint::TextReport(r);
}

TEST(MlintNondetRandom, AllowsStatsDirAndMemberCalls) {
  EXPECT_EQ(CountRule(LintContent("src/stats/rng.cc",
                                  "void f() { std::random_device rd; }"),
                      "nondet-random"),
            0);
  // Member functions named like the C APIs are unrelated.
  EXPECT_EQ(CountRule(LintContent("src/core/x.cc",
                                  "void f(Clock& c) { c.time(); o->clock(); }"),
                      "nondet-random"),
            0);
  // Seeded engines are fine; only the entropy sources are banned.
  EXPECT_EQ(CountRule(LintContent("src/core/x.cc",
                                  "std::mt19937 gen(seed);"),
                      "nondet-random"),
            0);
}

// ---- Rule 2: unordered-iter ------------------------------------------------

TEST(MlintUnorderedIter, FlagsRangeForAndBegin) {
  auto r = LintContent("src/core/x.cc", R"cc(
    #include <unordered_map>
    double Sum(const std::unordered_map<int, double>& m) {
      double s = 0;
      for (const auto& [k, v] : m) s += v;
      return s;
    }
    void Copy(std::unordered_set<int> u, std::vector<int>* out) {
      out->assign(u.begin(), u.end());
    }
  )cc");
  EXPECT_EQ(CountRule(r, "unordered-iter"), 2) << mlint::TextReport(r);
}

TEST(MlintUnorderedIter, LookupAndSentinelAreFine) {
  auto r = LintContent("src/core/x.cc", R"cc(
    #include <unordered_map>
    int Get(const std::unordered_map<int, int>& m, int k) {
      auto it = m.find(k);
      if (it == m.end()) return 0;   // sentinel compare, not iteration
      return it->second;
    }
    void Insert(std::unordered_map<int, int>& m) { m[1] = 2; m.erase(3); }
  )cc");
  EXPECT_EQ(CountRule(r, "unordered-iter"), 0) << mlint::TextReport(r);
}

TEST(MlintUnorderedIter, TracksAliasesAndMembers) {
  auto r = LintContent("src/core/x.cc", R"cc(
    using Index = std::unordered_map<int, int>;
    struct S {
      Index slots;
      std::unordered_map<int, int> raw_;
    };
    void f(S& s) {
      for (auto& kv : s.slots) Use(kv);
      for (auto& kv : s.raw_) Use(kv);
    }
  )cc");
  EXPECT_EQ(CountRule(r, "unordered-iter"), 2) << mlint::TextReport(r);
}

TEST(MlintUnorderedIter, OrderedMapIsFine) {
  auto r = LintContent("src/core/x.cc", R"cc(
    #include <map>
    double Sum(const std::map<int, double>& m) {
      double s = 0;
      for (const auto& [k, v] : m) s += v;
      return s;
    }
  )cc");
  EXPECT_EQ(CountRule(r, "unordered-iter"), 0) << mlint::TextReport(r);
}

// ---- Rule 3: charge-in-parallel --------------------------------------------

TEST(MlintChargeInParallel, FlagsUnledgeredCharge) {
  auto r = LintContent("src/core/x.cc", R"cc(
    void Sweep(sim::ClusterSim* sim) {
      exec::ParallelFor(n, 64, [&](const exec::Chunk& chunk) {
        sim->ChargeParallelCpuOnMachine(0, chunk.end - chunk.begin);
      });
    }
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 1) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, ScopedLedgerMakesItSafe) {
  auto r = LintContent("src/core/x.cc", R"cc(
    void Sweep(sim::ClusterSim* sim) {
      exec::ParallelFor(n, 64, [&](const exec::Chunk& chunk) {
        sim::ScopedLedger bind(&ledgers[chunk.index]);
        sim->ChargeParallelCpuOnMachine(0, chunk.end - chunk.begin);
      });
    }
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 0) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, ChargesOutsideTheLoopAreFine) {
  auto r = LintContent("src/core/x.cc", R"cc(
    void Sweep(sim::ClusterSim* sim) {
      exec::ParallelFor(n, 64, [&](const exec::Chunk& c) { work(c); });
      sim->ChargeParallelCpu(n * 1e-9);
    }
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 0) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, RelOperatorLambdasAreParallelRegions) {
  // Rel::Filter/Project/RowFilter run their row callbacks inside the
  // engine's chunked ParallelFor; charges in those lambdas interleave.
  auto r = LintContent("src/core/x.cc", R"cc(
    void Sweep(sim::ClusterSim* sim, Rel rel) {
      rel.Filter([&](const Tuple& t) {
        sim->ChargeParallelCpu(1e-9);
        return true;
      });
      rel.Project(Schema{"v"}, {ColExpr::Fn([&](const Tuple& t) {
        sim->ChargeCpu(0, 1e-9);
        return 0.0;
      })});
    }
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 2) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, FreeFunctionsNamedLikeOperatorsAreFine) {
  // Only member-call forms are engine operators; a local helper named
  // Filter and a foreign Fn factory take their lambdas synchronously.
  auto r = LintContent("src/core/x.cc", R"cc(
    void Sweep(sim::ClusterSim* sim) {
      Filter([&](const Tuple& t) {
        sim->ChargeParallelCpu(1e-9);
        return true;
      });
      Callback::Fn([&] { sim->ChargeParallelCpu(1e-9); });
    }
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 0) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, GatherBatchOverrideBodyIsParallel) {
  // The GAS engine calls GatherBatch once per ParallelFor chunk; charges
  // inside the override interleave by scheduling like any lambda charge.
  auto r = LintContent("src/core/x.cc", R"cc(
    struct Prog : GasProgram {
      void GatherBatch(const Vertex& center, const Graph& graph,
                       const std::size_t* neighbors, std::size_t count,
                       Gathered* out) override {
        sim->ChargeParallelCpuOnMachine(0, count * 1e-9);
      }
    };
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 1) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, SampleBatchOverrideBodyIsParallel) {
  auto r = LintContent("src/core/x.cc", R"cc(
    struct Vg : reldb::VgFunction {
      void SampleBatch(const ColumnBatch& in,
                       const std::vector<std::uint32_t>& group_offsets,
                       stats::Rng& rng, VgBatchOut* out) override {
        sim->ChargeCpu(0, 1e-9);
      }
    };
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 1) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, BatchHooksWithoutOverrideAreFine) {
  // A free helper that happens to share the name, and a plain call site,
  // are not the engine's batched hooks.
  auto r = LintContent("src/core/x.cc", R"cc(
    void GatherBatch(sim::ClusterSim* sim, std::size_t count) {
      sim->ChargeParallelCpuOnMachine(0, count * 1e-9);
    }
    void Drive(Prog& p) {
      p.GatherBatch(center, graph, neighbors, count, &out);
      sim->ChargeParallelCpu(1e-9);
    }
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 0) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, BatchHookOutputParamExemptFromNaiveReduction) {
  // The output span is the hook's own per-chunk slot array; += into it is
  // the intended aggregation, not a cross-chunk shared-root reduction.
  auto r = LintContent("src/core/x.cc", R"cc(
    struct Prog : GasProgram {
      void GatherBatch(const Vertex& center, const Graph& graph,
                       const std::size_t* neighbors, std::size_t count,
                       Gathered* out) override {
        for (std::size_t j = 0; j < count; ++j) {
          out[j].weight += graph.vertices[neighbors[j]].data.weight;
        }
      }
    };
  )cc");
  EXPECT_EQ(CountRule(r, "naive-reduction"), 0) << mlint::TextReport(r);
}

// ---- Rule 4: raw-thread ----------------------------------------------------

TEST(MlintRawThread, FlagsPrimitivesAndIncludes) {
  auto r = LintContent("src/core/x.cc", R"cc(
    #include <mutex>
    #include <thread>
    std::mutex mu;
    std::atomic<int> n{0};
    void f() { std::thread t([] {}); t.join(); }
  )cc");
  EXPECT_EQ(CountRule(r, "raw-thread"), 5) << mlint::TextReport(r);
}

TEST(MlintRawThread, ExecLayerIsExempt) {
  auto r = LintContent("src/exec/thread_pool.cc", R"cc(
    #include <thread>
    std::mutex mu;
  )cc");
  EXPECT_EQ(CountRule(r, "raw-thread"), 0);
}

TEST(MlintRawThread, FlagsSpinParkVocabularyOutsideExec) {
  // The lock-free pool's dispatch vocabulary — futex waits via
  // std::this_thread, explicit fences, cpu-relax intrinsics — is exec-only.
  auto r = LintContent("src/bsp/engine.h", R"cc(
    void Spin() {
      while (busy) __builtin_ia32_pause();
      std::atomic_thread_fence(std::memory_order_acquire);
      std::this_thread::yield();
    }
  )cc");
  EXPECT_EQ(CountRule(r, "raw-thread"), 3) << mlint::TextReport(r);
}

TEST(MlintRawThread, SpinParkVocabularyAllowedInExec) {
  auto r = LintContent("src/exec/thread_pool.cc", R"cc(
    void CpuRelax() { __builtin_ia32_pause(); }
    void Park() {
      std::atomic_thread_fence(std::memory_order_seq_cst);
      std::this_thread::yield();
    }
  )cc");
  EXPECT_EQ(CountRule(r, "raw-thread"), 0) << mlint::TextReport(r);
}

TEST(MlintRawThread, MmPauseFlaggedOutsideExec) {
  auto r = LintContent("src/reldb/rel.cc", R"cc(
    void Wait() { _mm_pause(); }
  )cc");
  EXPECT_EQ(CountRule(r, "raw-thread"), 1) << mlint::TextReport(r);
}

// ---- Rule 5: naive-reduction -----------------------------------------------

TEST(MlintNaiveReduction, FlagsCapturedAccumulator) {
  auto r = LintContent("src/core/x.cc", R"cc(
    double Total(std::int64_t n) {
      double total = 0;
      exec::ParallelFor(n, 64, [&](const exec::Chunk& chunk) {
        for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
          total += Cost(i);
        }
      });
      return total;
    }
  )cc");
  EXPECT_EQ(CountRule(r, "naive-reduction"), 1) << mlint::TextReport(r);
}

TEST(MlintNaiveReduction, LocalPartialsAndParamsAreFine) {
  auto r = LintContent("src/core/x.cc", R"cc(
    double Total(std::int64_t n) {
      return exec::ParallelReduce<double>(
          n, 64, 0.0,
          [&](const exec::Chunk& chunk) {
            double part = 0;
            for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
              part += Cost(i);
            }
            return part;
          },
          [](double acc, double part) {
            acc += part;  // ordered fold: acc is a parameter
            return acc;
          });
    }
  )cc");
  EXPECT_EQ(CountRule(r, "naive-reduction"), 0) << mlint::TextReport(r);
}

TEST(MlintNaiveReduction, PerChunkSlotWritesAreFine) {
  auto r = LintContent("src/core/x.cc", R"cc(
    void Fill(std::vector<double>& parts, std::int64_t n) {
      exec::ParallelFor(n, 64, [&](const exec::Chunk& chunk) {
        parts[chunk.index] += 1.0;  // disjoint slot per chunk
      });
    }
  )cc");
  // Indexed writes into per-chunk slots still accumulate via the captured
  // vector, but the root is subscripted by chunk identity; the rule walks
  // to the root and flags it — the suppression path documents why this one
  // stays. Here we just pin the current (conservative) behavior.
  EXPECT_EQ(CountRule(r, "naive-reduction"), 1) << mlint::TextReport(r);
}

TEST(MlintNaiveReduction, CapturedAccumulatorInRelCallbackFlagged) {
  // Row callbacks handed to the Rel operators execute under the engine's
  // ParallelFor, so captured accumulation there is the same hazard.
  auto r = LintContent("src/core/x.cc", R"cc(
    double Total(Rel rel) {
      double total = 0;
      rel.RowFilter([&](const Tuple& t) {
        total += AsDouble(t[0]);
        return true;
      });
      return total;
    }
  )cc");
  EXPECT_EQ(CountRule(r, "naive-reduction"), 1) << mlint::TextReport(r);
}

// ---- Rule 6: header-hygiene ------------------------------------------------

TEST(MlintHeaderHygiene, FlagsMissingGuardAndUsingNamespace) {
  auto r = LintContent("src/core/x.h", R"cc(
    #include <vector>
    using namespace std;
    struct S {};
  )cc");
  EXPECT_EQ(CountRule(r, "header-hygiene"), 2) << mlint::TextReport(r);
}

TEST(MlintHeaderHygiene, PragmaOnceOrIfndefGuardIsFine) {
  EXPECT_EQ(CountRule(LintContent("src/core/x.h",
                                  "#pragma once\nstruct S {};\n"),
                      "header-hygiene"),
            0);
  EXPECT_EQ(CountRule(LintContent("src/core/x.h",
                                  "#ifndef X_H_\n#define X_H_\n#endif\n"),
                      "header-hygiene"),
            0);
  // Source files need no guard.
  EXPECT_EQ(CountRule(LintContent("src/core/x.cc", "struct S {};\n"),
                      "header-hygiene"),
            0);
}

// ---- Tokenizer: comments and strings never trigger rules -------------------

TEST(MlintTokenizer, LiteralsAndCommentsAreStripped) {
  auto r = LintContent("src/core/x.cc", R"cc(
    // std::random_device in a comment
    /* std::mutex in a block comment */
    const char* s = "rand() time(nullptr) std::atomic<int>";
    const char* raw = R"(std::thread t;)";
  )cc");
  EXPECT_TRUE(r.findings.empty()) << mlint::TextReport(r);
}

// ---- Suppressions ----------------------------------------------------------

TEST(MlintSuppression, TrailingAndPrecedingCommentsSuppress) {
  auto r = LintContent("src/core/x.cc",
                       "std::mutex mu;  // mlint: allow(raw-thread) — guards "
                       "a write-once cache\n");
  EXPECT_TRUE(r.findings.empty()) << mlint::TextReport(r);

  r = LintContent("src/core/x.cc",
                  "// mlint: allow(raw-thread) — guards a write-once cache\n"
                  "std::mutex mu;\n");
  EXPECT_TRUE(r.findings.empty()) << mlint::TextReport(r);
}

TEST(MlintSuppression, OnlyCoversItsLineAndRule) {
  // The allowance covers line 1 only; the second mutex still fires.
  auto r = LintContent("src/core/x.cc",
                       "std::mutex a;  // mlint: allow(raw-thread) — reason!\n"
                       "std::mutex b;\n");
  EXPECT_EQ(CountRule(r, "raw-thread"), 1) << mlint::TextReport(r);

  // Wrong rule name in the allowance: finding survives, and the bogus
  // suppression is reported too.
  r = LintContent("src/core/x.cc",
                  "std::mutex a;  // mlint: allow(nondet-random) — reason!\n");
  EXPECT_EQ(CountRule(r, "raw-thread"), 1);
}

TEST(MlintSuppression, ReasonIsMandatory) {
  auto r = LintContent("src/core/x.cc",
                       "std::mutex a;  // mlint: allow(raw-thread)\n");
  EXPECT_EQ(CountRule(r, "raw-thread"), 1) << mlint::TextReport(r);
  EXPECT_EQ(CountRule(r, "bad-suppression"), 1) << mlint::TextReport(r);
}

TEST(MlintSuppression, UnknownRuleIsReported) {
  auto r = LintContent("src/core/x.cc",
                       "// mlint: allow(no-such-rule) — misspelled\nint x;\n");
  EXPECT_EQ(CountRule(r, "bad-suppression"), 1) << mlint::TextReport(r);
}

// ---- Baseline --------------------------------------------------------------

TEST(MlintBaseline, MatchesByContentNotLineNumber) {
  auto r = LintContent("src/core/x.cc", "\n\n\nstd::mutex mu;\n");
  ASSERT_EQ(r.findings.size(), 1u);
  std::string baseline = "# grandfathered\n" + mlint::FindingKey(r.findings[0]) + "\n";
  int stale = mlint::ApplyBaseline(baseline, &r);
  EXPECT_EQ(stale, 0);
  EXPECT_EQ(r.NewCount(), 0);
  EXPECT_EQ(r.BaselinedCount(), 1);
}

TEST(MlintBaseline, EachEntryAbsorbsOneFinding) {
  auto r = LintContent("src/core/x.cc",
                       "std::mutex mu;\nstd::mutex mu;\n");
  ASSERT_EQ(r.findings.size(), 2u);
  // One entry, two identical findings: one stays new.
  std::string baseline = mlint::FindingKey(r.findings[0]) + "\n";
  mlint::ApplyBaseline(baseline, &r);
  EXPECT_EQ(r.NewCount(), 1);
  EXPECT_EQ(r.BaselinedCount(), 1);
}

TEST(MlintBaseline, StaleEntriesAreCounted) {
  auto r = LintContent("src/core/x.cc", "int x;\n");
  int stale = mlint::ApplyBaseline(
      "raw-thread|src/gone.cc|std::mutex old;\n", &r);
  EXPECT_EQ(stale, 1);
}

// ---- Reporters -------------------------------------------------------------

TEST(MlintJsonReport, SchemaFieldsPresent) {
  auto r = LintContent("src/core/x.cc",
                       "std::mutex mu;  // quote\" and backslash \\ here\n");
  ASSERT_EQ(r.findings.size(), 1u);
  std::string json = mlint::JsonReport(r);
  EXPECT_NE(json.find("\"mlint_version\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"summary\": {\"total\": 1, \"new\": 1, "
                      "\"baselined\": 0}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"rule\": \"raw-thread\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"path\": \"src/core/x.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"baselined\": false"), std::string::npos) << json;
  // The snippet's quote and backslash must be escaped.
  EXPECT_NE(json.find("\\\\ here"), std::string::npos) << json;
  EXPECT_NE(json.find("quote\\\""), std::string::npos) << json;
}

TEST(MlintJsonReport, EmptyFindingsIsValid) {
  auto r = LintContent("src/core/x.cc", "int x;\n");
  std::string json = mlint::JsonReport(r);
  EXPECT_NE(json.find("\"findings\": []"), std::string::npos) << json;
}

TEST(MlintTextReport, SummarizesCounts) {
  auto r = LintContent("src/core/x.cc", "std::mutex mu;\n");
  std::string text = mlint::TextReport(r);
  EXPECT_NE(text.find("src/core/x.cc:1: [raw-thread]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("1 findings (1 new, 0 baselined)"), std::string::npos)
      << text;
}

// ---- Rule 7: ignored-status ------------------------------------------------

TEST(MlintIgnoredStatus, FlagsBareStatusCalls) {
  auto r = LintContent("src/core/x.cc", R"cc(
    void f(sim::ClusterSim* sim, Engine& engine) {
      sim->Allocate(0, 64.0, "buf");
      engine.Boot();
      if (ready) engine.RunSweep(program, "sweep");
    }
  )cc");
  EXPECT_EQ(CountRule(r, "ignored-status"), 3) << mlint::TextReport(r);
}

TEST(MlintIgnoredStatus, QuietWhenConsumedOrVoidCast) {
  auto r = LintContent("src/core/x.cc", R"cc(
    Status f(sim::ClusterSim* sim, Engine& engine) {
      Status st = sim->Allocate(0, 64.0, "buf");
      MLBENCH_RETURN_NOT_OK(engine.Boot());
      if (!engine.RunSweep(program, "s").ok()) return st;
      (void)sim->Allocate(1, 8.0, "scratch");
      return engine.RunSuperstep(fn, cost, "step");
    }
  )cc");
  EXPECT_EQ(CountRule(r, "ignored-status"), 0) << mlint::TextReport(r);
}

TEST(MlintIgnoredStatus, SuppressibleWithReason) {
  auto r = LintContent("src/core/x.cc",
                       "void f(E& e) {\n"
                       "  e.Boot();  // mlint: allow(ignored-status) — boot "
                       "failure is the experiment outcome\n"
                       "}\n");
  EXPECT_EQ(CountRule(r, "ignored-status"), 0) << mlint::TextReport(r);
}

// ---- Registry --------------------------------------------------------------

TEST(MlintRegistry, AllSixRulesRegistered) {
  std::vector<std::string> names;
  for (const auto& r : mlint::Rules()) names.push_back(r.name);
  for (const char* expected :
       {"nondet-random", "unordered-iter", "charge-in-parallel", "raw-thread",
        "naive-reduction", "header-hygiene", "ignored-status"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing rule " << expected;
  }
}

}  // namespace
