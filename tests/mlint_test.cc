#include "mlint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

/// Per-rule fixtures for mlint (tools/mlint). Every rule gets a positive
/// snippet (must fire) and a negative one (must stay quiet), plus coverage
/// of suppression comments, baseline load/match semantics, and the JSON
/// reporter schema. Fixtures are raw strings, which also proves the
/// tokenizer strips literals: linting *this* file finds nothing.

namespace {

using mlint::Finding;
using mlint::LintContent;
using mlint::LintResult;

int CountRule(const LintResult& r, const std::string& rule) {
  int n = 0;
  for (const auto& f : r.findings) n += f.rule == rule ? 1 : 0;
  return n;
}

// ---- Rule 1: nondet-random -------------------------------------------------

TEST(MlintNondetRandom, FlagsEntropySources) {
  auto r = LintContent("src/core/x.cc", R"cc(
    #include <random>
    void f() {
      std::random_device rd;
      int a = rand() % 7;
      long t = time(nullptr);
      srand(42);
    }
  )cc");
  EXPECT_EQ(CountRule(r, "nondet-random"), 4) << mlint::TextReport(r);
}

TEST(MlintNondetRandom, AllowsStatsDirAndMemberCalls) {
  EXPECT_EQ(CountRule(LintContent("src/stats/rng.cc",
                                  "void f() { std::random_device rd; }"),
                      "nondet-random"),
            0);
  // Member functions named like the C APIs are unrelated.
  EXPECT_EQ(CountRule(LintContent("src/core/x.cc",
                                  "void f(Clock& c) { c.time(); o->clock(); }"),
                      "nondet-random"),
            0);
  // Seeded engines are fine; only the entropy sources are banned.
  EXPECT_EQ(CountRule(LintContent("src/core/x.cc",
                                  "std::mt19937 gen(seed);"),
                      "nondet-random"),
            0);
}

// ---- Rule 2: unordered-iter ------------------------------------------------

TEST(MlintUnorderedIter, FlagsRangeForAndBegin) {
  auto r = LintContent("src/core/x.cc", R"cc(
    #include <unordered_map>
    double Sum(const std::unordered_map<int, double>& m) {
      double s = 0;
      for (const auto& [k, v] : m) s += v;
      return s;
    }
    void Copy(std::unordered_set<int> u, std::vector<int>* out) {
      out->assign(u.begin(), u.end());
    }
  )cc");
  EXPECT_EQ(CountRule(r, "unordered-iter"), 2) << mlint::TextReport(r);
}

TEST(MlintUnorderedIter, LookupAndSentinelAreFine) {
  auto r = LintContent("src/core/x.cc", R"cc(
    #include <unordered_map>
    int Get(const std::unordered_map<int, int>& m, int k) {
      auto it = m.find(k);
      if (it == m.end()) return 0;   // sentinel compare, not iteration
      return it->second;
    }
    void Insert(std::unordered_map<int, int>& m) { m[1] = 2; m.erase(3); }
  )cc");
  EXPECT_EQ(CountRule(r, "unordered-iter"), 0) << mlint::TextReport(r);
}

TEST(MlintUnorderedIter, TracksAliasesAndMembers) {
  auto r = LintContent("src/core/x.cc", R"cc(
    using Index = std::unordered_map<int, int>;
    struct S {
      Index slots;
      std::unordered_map<int, int> raw_;
    };
    void f(S& s) {
      for (auto& kv : s.slots) Use(kv);
      for (auto& kv : s.raw_) Use(kv);
    }
  )cc");
  EXPECT_EQ(CountRule(r, "unordered-iter"), 2) << mlint::TextReport(r);
}

TEST(MlintUnorderedIter, OrderedMapIsFine) {
  auto r = LintContent("src/core/x.cc", R"cc(
    #include <map>
    double Sum(const std::map<int, double>& m) {
      double s = 0;
      for (const auto& [k, v] : m) s += v;
      return s;
    }
  )cc");
  EXPECT_EQ(CountRule(r, "unordered-iter"), 0) << mlint::TextReport(r);
}

// ---- Rule 3: charge-in-parallel --------------------------------------------

TEST(MlintChargeInParallel, FlagsUnledgeredCharge) {
  auto r = LintContent("src/core/x.cc", R"cc(
    void Sweep(sim::ClusterSim* sim) {
      exec::ParallelFor(n, 64, [&](const exec::Chunk& chunk) {
        sim->ChargeParallelCpuOnMachine(0, chunk.end - chunk.begin);
      });
    }
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 1) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, ScopedLedgerMakesItSafe) {
  auto r = LintContent("src/core/x.cc", R"cc(
    void Sweep(sim::ClusterSim* sim) {
      exec::ParallelFor(n, 64, [&](const exec::Chunk& chunk) {
        sim::ScopedLedger bind(&ledgers[chunk.index]);
        sim->ChargeParallelCpuOnMachine(0, chunk.end - chunk.begin);
      });
    }
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 0) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, ChargesOutsideTheLoopAreFine) {
  auto r = LintContent("src/core/x.cc", R"cc(
    void Sweep(sim::ClusterSim* sim) {
      exec::ParallelFor(n, 64, [&](const exec::Chunk& c) { work(c); });
      sim->ChargeParallelCpu(n * 1e-9);
    }
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 0) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, RelOperatorLambdasAreParallelRegions) {
  // Rel::Filter/Project/RowFilter run their row callbacks inside the
  // engine's chunked ParallelFor; charges in those lambdas interleave.
  auto r = LintContent("src/core/x.cc", R"cc(
    void Sweep(sim::ClusterSim* sim, Rel rel) {
      rel.Filter([&](const Tuple& t) {
        sim->ChargeParallelCpu(1e-9);
        return true;
      });
      rel.Project(Schema{"v"}, {ColExpr::Fn([&](const Tuple& t) {
        sim->ChargeCpu(0, 1e-9);
        return 0.0;
      })});
    }
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 2) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, FreeFunctionsNamedLikeOperatorsAreFine) {
  // Only member-call forms are engine operators; a local helper named
  // Filter and a foreign Fn factory take their lambdas synchronously.
  auto r = LintContent("src/core/x.cc", R"cc(
    void Sweep(sim::ClusterSim* sim) {
      Filter([&](const Tuple& t) {
        sim->ChargeParallelCpu(1e-9);
        return true;
      });
      Callback::Fn([&] { sim->ChargeParallelCpu(1e-9); });
    }
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 0) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, GatherBatchOverrideBodyIsParallel) {
  // The GAS engine calls GatherBatch once per ParallelFor chunk; charges
  // inside the override interleave by scheduling like any lambda charge.
  auto r = LintContent("src/core/x.cc", R"cc(
    struct Prog : GasProgram {
      void GatherBatch(const Vertex& center, const Graph& graph,
                       const std::size_t* neighbors, std::size_t count,
                       Gathered* out) override {
        sim->ChargeParallelCpuOnMachine(0, count * 1e-9);
      }
    };
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 1) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, SampleBatchOverrideBodyIsParallel) {
  auto r = LintContent("src/core/x.cc", R"cc(
    struct Vg : reldb::VgFunction {
      void SampleBatch(const ColumnBatch& in,
                       const std::vector<std::uint32_t>& group_offsets,
                       stats::Rng& rng, VgBatchOut* out) override {
        sim->ChargeCpu(0, 1e-9);
      }
    };
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 1) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, BatchHooksWithoutOverrideAreFine) {
  // A free helper that happens to share the name, and a plain call site,
  // are not the engine's batched hooks.
  auto r = LintContent("src/core/x.cc", R"cc(
    void GatherBatch(sim::ClusterSim* sim, std::size_t count) {
      sim->ChargeParallelCpuOnMachine(0, count * 1e-9);
    }
    void Drive(Prog& p) {
      p.GatherBatch(center, graph, neighbors, count, &out);
      sim->ChargeParallelCpu(1e-9);
    }
  )cc");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 0) << mlint::TextReport(r);
}

TEST(MlintChargeInParallel, BatchHookOutputParamExemptFromNaiveReduction) {
  // The output span is the hook's own per-chunk slot array; += into it is
  // the intended aggregation, not a cross-chunk shared-root reduction.
  auto r = LintContent("src/core/x.cc", R"cc(
    struct Prog : GasProgram {
      void GatherBatch(const Vertex& center, const Graph& graph,
                       const std::size_t* neighbors, std::size_t count,
                       Gathered* out) override {
        for (std::size_t j = 0; j < count; ++j) {
          out[j].weight += graph.vertices[neighbors[j]].data.weight;
        }
      }
    };
  )cc");
  EXPECT_EQ(CountRule(r, "naive-reduction"), 0) << mlint::TextReport(r);
}

// ---- Rule 4: raw-thread ----------------------------------------------------

TEST(MlintRawThread, FlagsPrimitivesAndIncludes) {
  auto r = LintContent("src/core/x.cc", R"cc(
    #include <mutex>
    #include <thread>
    std::mutex mu;
    std::atomic<int> n{0};
    void f() { std::thread t([] {}); t.join(); }
  )cc");
  EXPECT_EQ(CountRule(r, "raw-thread"), 5) << mlint::TextReport(r);
}

TEST(MlintRawThread, ExecLayerIsExempt) {
  auto r = LintContent("src/exec/thread_pool.cc", R"cc(
    #include <thread>
    std::mutex mu;
  )cc");
  EXPECT_EQ(CountRule(r, "raw-thread"), 0);
}

TEST(MlintRawThread, FlagsSpinParkVocabularyOutsideExec) {
  // The lock-free pool's dispatch vocabulary — futex waits via
  // std::this_thread, explicit fences, cpu-relax intrinsics — is exec-only.
  auto r = LintContent("src/bsp/engine.h", R"cc(
    void Spin() {
      while (busy) __builtin_ia32_pause();
      std::atomic_thread_fence(std::memory_order_acquire);
      std::this_thread::yield();
    }
  )cc");
  EXPECT_EQ(CountRule(r, "raw-thread"), 3) << mlint::TextReport(r);
}

TEST(MlintRawThread, SpinParkVocabularyAllowedInExec) {
  auto r = LintContent("src/exec/thread_pool.cc", R"cc(
    void CpuRelax() { __builtin_ia32_pause(); }
    void Park() {
      std::atomic_thread_fence(std::memory_order_seq_cst);
      std::this_thread::yield();
    }
  )cc");
  EXPECT_EQ(CountRule(r, "raw-thread"), 0) << mlint::TextReport(r);
}

TEST(MlintRawThread, MmPauseFlaggedOutsideExec) {
  auto r = LintContent("src/reldb/rel.cc", R"cc(
    void Wait() { _mm_pause(); }
  )cc");
  EXPECT_EQ(CountRule(r, "raw-thread"), 1) << mlint::TextReport(r);
}

TEST(MlintRawThread, ServerLayerIsExempt) {
  // The experiment server's session threads and admission condvars are
  // host-side plumbing, scoped out of the rule like src/exec/.
  auto r = LintContent("src/server/admission.cc", R"cc(
    #include <condition_variable>
    #include <mutex>
    #include <thread>
    std::mutex mu;
    std::condition_variable cv;
    void f() { std::thread t([] {}); t.join(); }
  )cc");
  EXPECT_EQ(CountRule(r, "raw-thread"), 0) << mlint::TextReport(r);
}

TEST(MlintRawThread, ServerExemptionDoesNotLeakToSiblingDirs) {
  // The same content one directory over is still a violation: the
  // carve-out is for src/server/ itself, not anything mentioning it.
  auto r = LintContent("src/core/server_helpers.cc", R"cc(
    #include <thread>
    std::mutex mu;
  )cc");
  EXPECT_EQ(CountRule(r, "raw-thread"), 2) << mlint::TextReport(r);
}

// ---- Rule 5: naive-reduction -----------------------------------------------

TEST(MlintNaiveReduction, FlagsCapturedAccumulator) {
  auto r = LintContent("src/core/x.cc", R"cc(
    double Total(std::int64_t n) {
      double total = 0;
      exec::ParallelFor(n, 64, [&](const exec::Chunk& chunk) {
        for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
          total += Cost(i);
        }
      });
      return total;
    }
  )cc");
  EXPECT_EQ(CountRule(r, "naive-reduction"), 1) << mlint::TextReport(r);
}

TEST(MlintNaiveReduction, LocalPartialsAndParamsAreFine) {
  auto r = LintContent("src/core/x.cc", R"cc(
    double Total(std::int64_t n) {
      return exec::ParallelReduce<double>(
          n, 64, 0.0,
          [&](const exec::Chunk& chunk) {
            double part = 0;
            for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
              part += Cost(i);
            }
            return part;
          },
          [](double acc, double part) {
            acc += part;  // ordered fold: acc is a parameter
            return acc;
          });
    }
  )cc");
  EXPECT_EQ(CountRule(r, "naive-reduction"), 0) << mlint::TextReport(r);
}

TEST(MlintNaiveReduction, PerChunkSlotWritesAreFine) {
  auto r = LintContent("src/core/x.cc", R"cc(
    void Fill(std::vector<double>& parts, std::int64_t n) {
      exec::ParallelFor(n, 64, [&](const exec::Chunk& chunk) {
        parts[chunk.index] += 1.0;  // disjoint slot per chunk
      });
    }
  )cc");
  // Indexed writes into per-chunk slots still accumulate via the captured
  // vector, but the root is subscripted by chunk identity; the rule walks
  // to the root and flags it — the suppression path documents why this one
  // stays. Here we just pin the current (conservative) behavior.
  EXPECT_EQ(CountRule(r, "naive-reduction"), 1) << mlint::TextReport(r);
}

TEST(MlintNaiveReduction, CapturedAccumulatorInRelCallbackFlagged) {
  // Row callbacks handed to the Rel operators execute under the engine's
  // ParallelFor, so captured accumulation there is the same hazard.
  auto r = LintContent("src/core/x.cc", R"cc(
    double Total(Rel rel) {
      double total = 0;
      rel.RowFilter([&](const Tuple& t) {
        total += AsDouble(t[0]);
        return true;
      });
      return total;
    }
  )cc");
  EXPECT_EQ(CountRule(r, "naive-reduction"), 1) << mlint::TextReport(r);
}

// ---- Rule 6: header-hygiene ------------------------------------------------

TEST(MlintHeaderHygiene, FlagsMissingGuardAndUsingNamespace) {
  auto r = LintContent("src/core/x.h", R"cc(
    #include <vector>
    using namespace std;
    struct S {};
  )cc");
  EXPECT_EQ(CountRule(r, "header-hygiene"), 2) << mlint::TextReport(r);
}

TEST(MlintHeaderHygiene, PragmaOnceOrIfndefGuardIsFine) {
  EXPECT_EQ(CountRule(LintContent("src/core/x.h",
                                  "#pragma once\nstruct S {};\n"),
                      "header-hygiene"),
            0);
  EXPECT_EQ(CountRule(LintContent("src/core/x.h",
                                  "#ifndef X_H_\n#define X_H_\n#endif\n"),
                      "header-hygiene"),
            0);
  // Source files need no guard.
  EXPECT_EQ(CountRule(LintContent("src/core/x.cc", "struct S {};\n"),
                      "header-hygiene"),
            0);
}

// ---- Tokenizer: comments and strings never trigger rules -------------------

TEST(MlintTokenizer, LiteralsAndCommentsAreStripped) {
  auto r = LintContent("src/core/x.cc", R"cc(
    // std::random_device in a comment
    /* std::mutex in a block comment */
    const char* s = "rand() time(nullptr) std::atomic<int>";
    const char* raw = R"(std::thread t;)";
  )cc");
  EXPECT_TRUE(r.findings.empty()) << mlint::TextReport(r);
}

// ---- Suppressions ----------------------------------------------------------

TEST(MlintSuppression, TrailingAndPrecedingCommentsSuppress) {
  auto r = LintContent("src/core/x.cc",
                       "std::mutex mu;  // mlint: allow(raw-thread) — guards "
                       "a write-once cache\n");
  EXPECT_TRUE(r.findings.empty()) << mlint::TextReport(r);

  r = LintContent("src/core/x.cc",
                  "// mlint: allow(raw-thread) — guards a write-once cache\n"
                  "std::mutex mu;\n");
  EXPECT_TRUE(r.findings.empty()) << mlint::TextReport(r);
}

TEST(MlintSuppression, OnlyCoversItsLineAndRule) {
  // The allowance covers line 1 only; the second mutex still fires.
  auto r = LintContent("src/core/x.cc",
                       "std::mutex a;  // mlint: allow(raw-thread) — reason!\n"
                       "std::mutex b;\n");
  EXPECT_EQ(CountRule(r, "raw-thread"), 1) << mlint::TextReport(r);

  // Wrong rule name in the allowance: finding survives, and the bogus
  // suppression is reported too.
  r = LintContent("src/core/x.cc",
                  "std::mutex a;  // mlint: allow(nondet-random) — reason!\n");
  EXPECT_EQ(CountRule(r, "raw-thread"), 1);
}

TEST(MlintSuppression, ReasonIsMandatory) {
  auto r = LintContent("src/core/x.cc",
                       "std::mutex a;  // mlint: allow(raw-thread)\n");
  EXPECT_EQ(CountRule(r, "raw-thread"), 1) << mlint::TextReport(r);
  EXPECT_EQ(CountRule(r, "bad-suppression"), 1) << mlint::TextReport(r);
}

TEST(MlintSuppression, UnknownRuleIsReported) {
  auto r = LintContent("src/core/x.cc",
                       "// mlint: allow(no-such-rule) — misspelled\nint x;\n");
  EXPECT_EQ(CountRule(r, "bad-suppression"), 1) << mlint::TextReport(r);
}

// ---- Baseline --------------------------------------------------------------

TEST(MlintBaseline, MatchesByContentNotLineNumber) {
  auto r = LintContent("src/core/x.cc", "\n\n\nstd::mutex mu;\n");
  ASSERT_EQ(r.findings.size(), 1u);
  std::string baseline = "# grandfathered\n" + mlint::FindingKey(r.findings[0]) + "\n";
  int stale = mlint::ApplyBaseline(baseline, &r);
  EXPECT_EQ(stale, 0);
  EXPECT_EQ(r.NewCount(), 0);
  EXPECT_EQ(r.BaselinedCount(), 1);
}

TEST(MlintBaseline, EachEntryAbsorbsOneFinding) {
  auto r = LintContent("src/core/x.cc",
                       "std::mutex mu;\nstd::mutex mu;\n");
  ASSERT_EQ(r.findings.size(), 2u);
  // One entry, two identical findings: one stays new.
  std::string baseline = mlint::FindingKey(r.findings[0]) + "\n";
  mlint::ApplyBaseline(baseline, &r);
  EXPECT_EQ(r.NewCount(), 1);
  EXPECT_EQ(r.BaselinedCount(), 1);
}

TEST(MlintBaseline, StaleEntriesAreCounted) {
  auto r = LintContent("src/core/x.cc", "int x;\n");
  int stale = mlint::ApplyBaseline(
      "raw-thread|src/gone.cc|std::mutex old;\n", &r);
  EXPECT_EQ(stale, 1);
}

// ---- Reporters -------------------------------------------------------------

TEST(MlintJsonReport, SchemaFieldsPresent) {
  auto r = LintContent("src/core/x.cc",
                       "std::mutex mu;  // quote\" and backslash \\ here\n");
  ASSERT_EQ(r.findings.size(), 1u);
  std::string json = mlint::JsonReport(r);
  EXPECT_NE(json.find("\"mlint_version\": 2"), std::string::npos) << json;
  // Lexical findings carry an empty reachability chain.
  EXPECT_NE(json.find("\"chain\": []"), std::string::npos) << json;
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"summary\": {\"total\": 1, \"new\": 1, "
                      "\"baselined\": 0}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"rule\": \"raw-thread\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"path\": \"src/core/x.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"baselined\": false"), std::string::npos) << json;
  // The snippet's quote and backslash must be escaped.
  EXPECT_NE(json.find("\\\\ here"), std::string::npos) << json;
  EXPECT_NE(json.find("quote\\\""), std::string::npos) << json;
}

TEST(MlintJsonReport, EmptyFindingsIsValid) {
  auto r = LintContent("src/core/x.cc", "int x;\n");
  std::string json = mlint::JsonReport(r);
  EXPECT_NE(json.find("\"findings\": []"), std::string::npos) << json;
}

TEST(MlintTextReport, SummarizesCounts) {
  auto r = LintContent("src/core/x.cc", "std::mutex mu;\n");
  std::string text = mlint::TextReport(r);
  EXPECT_NE(text.find("src/core/x.cc:1: [raw-thread]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("1 findings (1 new, 0 baselined)"), std::string::npos)
      << text;
}

// ---- Rule 7: ignored-status ------------------------------------------------

TEST(MlintIgnoredStatus, FlagsBareStatusCalls) {
  auto r = LintContent("src/core/x.cc", R"cc(
    void f(sim::ClusterSim* sim, Engine& engine) {
      sim->Allocate(0, 64.0, "buf");
      engine.Boot();
      if (ready) engine.RunSweep(program, "sweep");
    }
  )cc");
  EXPECT_EQ(CountRule(r, "ignored-status"), 3) << mlint::TextReport(r);
}

TEST(MlintIgnoredStatus, QuietWhenConsumedOrVoidCast) {
  auto r = LintContent("src/core/x.cc", R"cc(
    Status f(sim::ClusterSim* sim, Engine& engine) {
      Status st = sim->Allocate(0, 64.0, "buf");
      MLBENCH_RETURN_NOT_OK(engine.Boot());
      if (!engine.RunSweep(program, "s").ok()) return st;
      (void)sim->Allocate(1, 8.0, "scratch");
      return engine.RunSuperstep(fn, cost, "step");
    }
  )cc");
  EXPECT_EQ(CountRule(r, "ignored-status"), 0) << mlint::TextReport(r);
}

TEST(MlintIgnoredStatus, KnowsServerProtocolApis) {
  // Dropping a frame-I/O or drain status tears the wire protocol; the
  // rule knows the server's Status-returning names.
  auto r = LintContent("src/core/x.cc", R"cc(
    void f(int fd, server::AdmissionController& ctl) {
      WriteFrame(fd, MsgType::kPong, "");
      ReadFrame(fd, &frame);
      ctl.Admit(1024.0, 0, "run");
    }
  )cc");
  EXPECT_EQ(CountRule(r, "ignored-status"), 3) << mlint::TextReport(r);
}

TEST(MlintIgnoredStatus, QuietWhenServerApisConsumed) {
  auto r = LintContent("src/core/x.cc", R"cc(
    Status f(int fd) {
      MLBENCH_RETURN_NOT_OK(WriteFrame(fd, MsgType::kPong, ""));
      if (!ReadFrame(fd, &frame).ok()) return Status::Unavailable("gone");
      return Status::OK();
    }
  )cc");
  EXPECT_EQ(CountRule(r, "ignored-status"), 0) << mlint::TextReport(r);
}

TEST(MlintIgnoredStatus, SuppressibleWithReason) {
  auto r = LintContent("src/core/x.cc",
                       "void f(E& e) {\n"
                       "  e.Boot();  // mlint: allow(ignored-status) — boot "
                       "failure is the experiment outcome\n"
                       "}\n");
  EXPECT_EQ(CountRule(r, "ignored-status"), 0) << mlint::TextReport(r);
}

// ---- Registry --------------------------------------------------------------

TEST(MlintRegistry, AllElevenRulesRegistered) {
  std::vector<std::string> names;
  for (const auto& r : mlint::Rules()) names.push_back(r.name);
  // 11 rules plus the bad-suppression meta-rule.
  EXPECT_EQ(names.size(), 12u);
  for (const char* expected :
       {"nondet-random", "unordered-iter", "charge-in-parallel", "raw-thread",
        "naive-reduction", "header-hygiene", "ignored-status",
        "rng-in-parallel", "ledger-order", "borrow-escape", "frozen-grain",
        "bad-suppression"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing rule " << expected;
  }
}

// ---- Rule 8: rng-in-parallel -----------------------------------------------

TEST(MlintRngInParallel, SharedRngDrawInsideParallelForFlagged) {
  auto r = LintContent("src/core/x.cc", R"cc(
    void Draw(stats::Rng& rng, Out* out, std::int64_t n) {
      exec::ParallelFor(n, 64, [&](const exec::Chunk& chunk) {
        out->v[chunk.index] = rng.NextUniform();
      });
    }
  )cc");
  EXPECT_EQ(CountRule(r, "rng-in-parallel"), 1) << mlint::TextReport(r);
}

TEST(MlintRngInParallel, SplitSubstreamIsTheSanctionedForm) {
  auto r = LintContent("src/core/x.cc", R"cc(
    void Draw(stats::Rng& rng, Out* out, std::int64_t n) {
      exec::ParallelFor(n, 64, [&](const exec::Chunk& chunk) {
        stats::Rng sub = rng.Split(chunk.index);
        out->v[chunk.index] = sub.NextUniform();
      });
    }
  )cc");
  EXPECT_EQ(CountRule(r, "rng-in-parallel"), 0) << mlint::TextReport(r);
}

TEST(MlintRngInParallel, HookOwnRngParameterIsFine) {
  // The engine hands SampleBatch a per-group substream; drawing from the
  // hook's own parameter is exactly the sanctioned pattern.
  auto r = LintContent("src/core/x.cc", R"cc(
    struct Vg : reldb::VgFunction {
      void SampleBatch(const ColumnBatch& in,
                       const std::vector<std::uint32_t>& group_offsets,
                       stats::Rng& rng, VgBatchOut* out) override {
        out->values.push_back(rng.NextGaussian());
      }
    };
  )cc");
  EXPECT_EQ(CountRule(r, "rng-in-parallel"), 0) << mlint::TextReport(r);
}

TEST(MlintRngInParallel, SerialUseAndStatsDirAreFine) {
  // Serial draws share the stream legitimately.
  auto r = LintContent("src/core/x.cc", R"cc(
    double Sum(stats::Rng& rng, std::int64_t n) {
      double s = 0;
      for (std::int64_t i = 0; i < n; ++i) s += rng.NextUniform();
      return s;
    }
  )cc");
  EXPECT_EQ(CountRule(r, "rng-in-parallel"), 0) << mlint::TextReport(r);
  // src/stats/ implements the RNG; the rule does not police it.
  auto r2 = LintContent("src/stats/rng_test_util.cc", R"cc(
    void Fill(stats::Rng& rng, std::int64_t n) {
      exec::ParallelFor(n, 64, [&](const exec::Chunk& c) { rng.Next(); });
    }
  )cc");
  EXPECT_EQ(CountRule(r2, "rng-in-parallel"), 0) << mlint::TextReport(r2);
}

// ---- Rule 9: ledger-order --------------------------------------------------

TEST(MlintLedgerOrder, FinalizationInsideParallelRegionFlagged) {
  auto r = LintContent("src/core/x.cc", R"cc(
    void Sweep(sim::ClusterSim* sim, std::vector<sim::ChargeLedger>& ledgers,
               std::int64_t n) {
      exec::ParallelFor(n, 64, [&](const exec::Chunk& chunk) {
        sim->EndPhase("sweep");
        ledgers[chunk.index].CommitLedger();
      });
    }
  )cc");
  EXPECT_EQ(CountRule(r, "ledger-order"), 2) << mlint::TextReport(r);
}

TEST(MlintLedgerOrder, CallerSideFinalizationIsTheFix) {
  auto r = LintContent("src/core/x.cc", R"cc(
    void Sweep(sim::ClusterSim* sim, std::vector<sim::ChargeLedger>& ledgers,
               std::int64_t n) {
      exec::ParallelFor(n, 64, [&](const exec::Chunk& c) { Work(c); });
      sim->CommitLedgers(ledgers);
      sim->EndPhase("sweep");
    }
  )cc");
  EXPECT_EQ(CountRule(r, "ledger-order"), 0) << mlint::TextReport(r);
}

TEST(MlintLedgerOrder, SimLayerIsExempt) {
  auto r = LintContent("src/sim/cluster_sim.cc", R"cc(
    void ClusterSim::Flush(std::int64_t n) {
      exec::ParallelFor(n, 64, [&](const exec::Chunk& c) { EndPhase("x"); });
    }
  )cc");
  EXPECT_EQ(CountRule(r, "ledger-order"), 0) << mlint::TextReport(r);
}

// ---- Rule 10: borrow-escape ------------------------------------------------

TEST(MlintBorrowEscape, SpanStoredIntoMemberOrContainerFlagged) {
  auto r = LintContent("src/core/x.cc", R"cc(
    struct Prog : GasProgram {
      void GatherBatch(const Vertex& center, const Graph& graph,
                       const std::size_t* neighbors, std::size_t count,
                       Gathered* out) override {
        saved_ = neighbors;
        stash_.push_back(&out[0]);
      }
      const std::size_t* saved_;
      std::vector<Gathered*> stash_;
    };
  )cc");
  EXPECT_EQ(CountRule(r, "borrow-escape"), 2) << mlint::TextReport(r);
}

TEST(MlintBorrowEscape, ValueReadsAndLocalCursorsAreFine) {
  auto r = LintContent("src/core/x.cc", R"cc(
    struct Prog : GasProgram {
      void GatherBatch(const Vertex& center, const Graph& graph,
                       const std::size_t* neighbors, std::size_t count,
                       Gathered* out) override {
        const std::size_t* cursor = neighbors;  // dies with the call
        for (std::size_t j = 0; j < count; ++j) {
          out[j].weight = graph.vertices[cursor[j]].data.weight;
        }
      }
    };
  )cc");
  EXPECT_EQ(CountRule(r, "borrow-escape"), 0) << mlint::TextReport(r);
}

TEST(MlintBorrowEscape, StaticLocalIsAnOutlivingSink) {
  auto r = LintContent("src/core/x.cc", R"cc(
    struct Prog : GasProgram {
      void GatherBatch(const Vertex& center, const Graph& graph,
                       const std::size_t* neighbors, std::size_t count,
                       Gathered* out) override {
        static const std::size_t* last;
        last = neighbors;
      }
    };
  )cc");
  EXPECT_EQ(CountRule(r, "borrow-escape"), 1) << mlint::TextReport(r);
}

// ---- Rule 11: frozen-grain -------------------------------------------------

TEST(MlintFrozenGrain, ChangedValueWithoutMarkerFlagged) {
  auto r = LintContent("src/reldb/rel.cc",
                       "constexpr std::int64_t kRowGrain = 512;\n");
  EXPECT_EQ(CountRule(r, "frozen-grain"), 1) << mlint::TextReport(r);
}

TEST(MlintFrozenGrain, FrozenValueIsQuiet) {
  auto r = LintContent("src/reldb/rel.cc",
                       "constexpr std::int64_t kRowGrain = 1024;\n");
  EXPECT_EQ(CountRule(r, "frozen-grain"), 0) << mlint::TextReport(r);
}

TEST(MlintFrozenGrain, MarkerAcknowledgesARegoldenedEdit) {
  auto r = LintContent(
      "src/reldb/rel.cc",
      "constexpr std::int64_t kRowGrain = 512;"
      "  // mlint: frozen-grain — goldens re-baked in this PR\n");
  EXPECT_EQ(CountRule(r, "frozen-grain"), 0) << mlint::TextReport(r);
}

TEST(MlintFrozenGrain, MissingDeclarationFlagged) {
  // The declaration must stay greppable; deleting it is itself a finding.
  auto r = LintContent("src/reldb/rel.cc", "int x;\n");
  EXPECT_EQ(CountRule(r, "frozen-grain"), 1) << mlint::TextReport(r);
}

TEST(MlintFrozenGrain, GasVertexGrainTracked) {
  auto r = LintContent(
      "src/gas/engine.h",
      "#pragma once\nconstexpr std::size_t kVertexGrain = 128;\n");
  EXPECT_EQ(CountRule(r, "frozen-grain"), 1) << mlint::TextReport(r);
}

TEST(MlintFrozenGrain, OtherPathsUnaffected) {
  auto r = LintContent("src/core/x.cc", "constexpr int kRowGrain = 512;\n");
  EXPECT_EQ(CountRule(r, "frozen-grain"), 0) << mlint::TextReport(r);
}

// ---- Pass 2: transitive parallel-region reachability -----------------------

TEST(MlintTransitive, HoistedChargeTwoCallsDeepIsFlaggedWithChain) {
  auto r = mlint::LintSources({
      {"src/core/util.cc",
       "void ApplyCost(sim::ClusterSim* sim) {\n"
       "  sim->ChargeParallelCpu(1.0);\n"
       "}\n"
       "void MidStep(sim::ClusterSim* sim) { ApplyCost(sim); }\n"},
      {"src/core/drive.cc",
       "void Sweep(sim::ClusterSim* sim, std::int64_t n) {\n"
       "  exec::ParallelFor(n, 64, [&](const exec::Chunk& c) {\n"
       "    MidStep(sim);\n"
       "  });\n"
       "}\n"},
  });
  ASSERT_EQ(CountRule(r, "charge-in-parallel"), 1) << mlint::TextReport(r);
  const Finding* f = nullptr;
  for (const auto& fd : r.findings) {
    if (fd.rule == "charge-in-parallel") f = &fd;
  }
  ASSERT_NE(f, nullptr);
  // The finding lands on the hazard, in the helper's file.
  EXPECT_EQ(f->path, "src/core/util.cc");
  EXPECT_EQ(f->line, 2);
  // Chain: root, two hops, hazard.
  ASSERT_EQ(f->chain.size(), 4u) << mlint::TextReport(r);
  EXPECT_NE(f->chain[0].find("parallel region (ParallelFor body)"),
            std::string::npos)
      << f->chain[0];
  EXPECT_NE(f->chain[1].find("calls MidStep(...)"), std::string::npos);
  EXPECT_NE(f->chain[2].find("calls ApplyCost(...)"), std::string::npos);
  EXPECT_NE(f->chain[3].find("hazard `"), std::string::npos);
}

TEST(MlintTransitive, SerialOnlyCallerIsQuiet) {
  // The same helper reached only from serial code: no finding.
  auto r = mlint::LintSources({
      {"src/core/util.cc",
       "void ApplyCost(sim::ClusterSim* sim) {\n"
       "  sim->ChargeParallelCpu(1.0);\n"
       "}\n"
       "void MidStep(sim::ClusterSim* sim) { ApplyCost(sim); }\n"},
      {"src/core/serial.cc",
       "void Report(sim::ClusterSim* sim) { MidStep(sim); }\n"},
  });
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 0) << mlint::TextReport(r);
}

TEST(MlintTransitive, ScopedLedgerOnThePathGatesTheCharge) {
  auto r = mlint::LintSources({
      {"src/core/util.cc",
       "void ApplyCost(sim::ClusterSim* sim) {\n"
       "  sim->ChargeParallelCpu(1.0);\n"
       "}\n"},
      {"src/core/drive.cc",
       "void Sweep(sim::ClusterSim* sim, std::int64_t n) {\n"
       "  exec::ParallelFor(n, 64, [&](const exec::Chunk& c) {\n"
       "    sim::ScopedLedger bind(&ledgers[c.index]);\n"
       "    ApplyCost(sim);\n"
       "  });\n"
       "}\n"},
  });
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 0) << mlint::TextReport(r);
}

TEST(MlintTransitive, FreeFunctionResolvesAcrossFiles) {
  auto r = mlint::LintSources({
      {"src/core/util.cc",
       "void Work(sim::ClusterSim* sim) { sim->ChargeParallelCpu(1.0); }\n"},
      {"src/core/drive.cc",
       "void Sweep(sim::ClusterSim* sim, std::int64_t n) {\n"
       "  exec::ParallelFor(n, 64, [&](const exec::Chunk& c) {\n"
       "    Work(sim);\n"
       "  });\n"
       "}\n"},
  });
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 1) << mlint::TextReport(r);
}

TEST(MlintTransitive, LambdaLocalShadowsTheFreeFunction) {
  // Same call site as above, but the caller's file binds a local lambda
  // named Work: the local binding wins, the hazardous free function is
  // never reached.
  auto r = mlint::LintSources({
      {"src/core/util.cc",
       "void Work(sim::ClusterSim* sim) { sim->ChargeParallelCpu(1.0); }\n"},
      {"src/core/drive.cc",
       "void Sweep(sim::ClusterSim* sim, std::int64_t n) {\n"
       "  auto Work = [&](std::int64_t i) { Touch(i); };\n"
       "  exec::ParallelFor(n, 64, [&](const exec::Chunk& c) {\n"
       "    Work(c.begin);\n"
       "  });\n"
       "}\n"},
  });
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 0) << mlint::TextReport(r);
}

TEST(MlintTransitive, MemberCallDoesNotResolveToFreeFunction) {
  auto r = mlint::LintSources({
      {"src/core/util.cc",
       "void Work(sim::ClusterSim* sim) { sim->ChargeParallelCpu(1.0); }\n"},
      {"src/core/drive.cc",
       "void Sweep(Helper& h, std::int64_t n) {\n"
       "  exec::ParallelFor(n, 64, [&](const exec::Chunk& c) {\n"
       "    h.Work(c.begin);\n"
       "  });\n"
       "}\n"},
  });
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 0) << mlint::TextReport(r);
}

TEST(MlintTransitive, SameFileHelperCoveredByLintContent) {
  auto r = LintContent(
      "src/core/x.cc",
      "void ApplyCost(sim::ClusterSim* sim) {\n"
      "  sim->ChargeParallelCpu(1.0);\n"
      "}\n"
      "void Sweep(sim::ClusterSim* sim, std::int64_t n) {\n"
      "  exec::ParallelFor(n, 64, [&](const exec::Chunk& c) {"
      " ApplyCost(sim); });\n"
      "}\n");
  EXPECT_EQ(CountRule(r, "charge-in-parallel"), 1) << mlint::TextReport(r);
}

TEST(MlintTransitive, SharedRngDrawnInHelperFlagged) {
  auto r = mlint::LintSources({
      {"src/core/util.cc",
       "stats::Rng g_rng(42);\n"
       "double DrawOne() { return g_rng.NextUniform(); }\n"},
      {"src/core/drive.cc",
       "void Sweep(Out* out, std::int64_t n) {\n"
       "  exec::ParallelFor(n, 64, [&](const exec::Chunk& c) {\n"
       "    out->v[c.index] = DrawOne();\n"
       "  });\n"
       "}\n"},
  });
  EXPECT_EQ(CountRule(r, "rng-in-parallel"), 1) << mlint::TextReport(r);
}

TEST(MlintTransitive, LedgerFinalizationInHelperFlagged) {
  auto r = mlint::LintSources({
      {"src/core/util.cc",
       "void Finish(sim::ClusterSim* sim) { sim->EndPhase(\"sweep\"); }\n"},
      {"src/core/drive.cc",
       "void Sweep(sim::ClusterSim* sim, std::int64_t n) {\n"
       "  exec::ParallelFor(n, 64, [&](const exec::Chunk& c) {\n"
       "    Finish(sim);\n"
       "  });\n"
       "}\n"},
  });
  EXPECT_EQ(CountRule(r, "ledger-order"), 1) << mlint::TextReport(r);
}

// ---- --why: reachability chains --------------------------------------------

TEST(MlintWhy, PrintsChainForTransitiveFindings) {
  auto r = mlint::LintSources({
      {"src/core/util.cc",
       "void ApplyCost(sim::ClusterSim* sim) {\n"
       "  sim->ChargeParallelCpu(1.0);\n"
       "}\n"
       "void MidStep(sim::ClusterSim* sim) { ApplyCost(sim); }\n"},
      {"src/core/drive.cc",
       "void Sweep(sim::ClusterSim* sim, std::int64_t n) {\n"
       "  exec::ParallelFor(n, 64, [&](const exec::Chunk& c) {\n"
       "    MidStep(sim);\n"
       "  });\n"
       "}\n"},
  });
  std::string why = mlint::WhyReport(r, "charge-in-parallel");
  EXPECT_NE(why.find("src/core/util.cc:2: [charge-in-parallel]"),
            std::string::npos)
      << why;
  EXPECT_NE(why.find("  why: src/core/drive.cc:2: parallel region "
                     "(ParallelFor body)"),
            std::string::npos)
      << why;
  EXPECT_NE(why.find("calls MidStep(...)"), std::string::npos) << why;
  EXPECT_NE(why.find("calls ApplyCost(...)"), std::string::npos) << why;
  EXPECT_NE(why.find("hazard `"), std::string::npos) << why;
  // A path:line spec selects the same finding.
  std::string by_site = mlint::WhyReport(r, "src/core/util.cc:2");
  EXPECT_NE(by_site.find("parallel region"), std::string::npos) << by_site;
}

TEST(MlintWhy, LexicalFindingsAndMissesExplainThemselves) {
  auto r = LintContent("src/core/x.cc", "std::mutex mu;\n");
  std::string why = mlint::WhyReport(r, "raw-thread");
  EXPECT_NE(why.find("lexical finding on this line"), std::string::npos)
      << why;
  std::string miss = mlint::WhyReport(r, "no-such-rule");
  EXPECT_NE(miss.find("no finding matches"), std::string::npos) << miss;
}

// ---- GitHub annotations ----------------------------------------------------

TEST(MlintAnnotations, EmitsWorkflowErrorCommands) {
  auto r = LintContent("src/core/x.cc", "std::mutex mu;\n");
  std::string a = mlint::GithubAnnotations(r);
  EXPECT_NE(
      a.find("::error file=src/core/x.cc,line=1,title=mlint raw-thread::"),
      std::string::npos)
      << a;
}

// ---- --fix: mechanical repairs ---------------------------------------------

TEST(MlintFix, InsertsVoidCastForIgnoredStatus) {
  const std::string src = "void f(E& e) {\n  e.Boot();\n}\n";
  auto r = LintContent("src/core/x.cc", src);
  ASSERT_EQ(CountRule(r, "ignored-status"), 1) << mlint::TextReport(r);
  int edits = 0;
  std::string fixed =
      mlint::FixContent("src/core/x.cc", src, r.findings, &edits);
  EXPECT_EQ(edits, 1);
  EXPECT_NE(fixed.find("  (void)e.Boot();"), std::string::npos) << fixed;
  // The fixed file lints clean.
  EXPECT_TRUE(LintContent("src/core/x.cc", fixed).findings.empty());
}

TEST(MlintFix, StubsReasonlessSuppression) {
  const std::string src = "std::mutex a;  // mlint: allow(raw-thread)\n";
  auto r = LintContent("src/core/x.cc", src);
  ASSERT_EQ(CountRule(r, "bad-suppression"), 1) << mlint::TextReport(r);
  int edits = 0;
  std::string fixed =
      mlint::FixContent("src/core/x.cc", src, r.findings, &edits);
  EXPECT_EQ(edits, 1);
  EXPECT_NE(fixed.find("TODO(mlint --fix)"), std::string::npos) << fixed;
  // The stubbed reason satisfies the meta-rule (and reactivates the
  // allowance) until a human replaces it.
  auto r2 = LintContent("src/core/x.cc", fixed);
  EXPECT_EQ(CountRule(r2, "bad-suppression"), 0) << mlint::TextReport(r2);
}

TEST(MlintFix, UnorderedIterScaffoldIsIdempotent) {
  const std::string src =
      "double Sum(const std::unordered_map<int, double>& m) {\n"
      "  double s = 0;\n"
      "  for (const auto& [k, v] : m) s += v;\n"
      "  return s;\n"
      "}\n";
  auto r = LintContent("src/core/x.cc", src);
  ASSERT_EQ(CountRule(r, "unordered-iter"), 1) << mlint::TextReport(r);
  int edits = 0;
  std::string fixed =
      mlint::FixContent("src/core/x.cc", src, r.findings, &edits);
  EXPECT_EQ(edits, 1);
  EXPECT_NE(fixed.find("sort them"), std::string::npos) << fixed;
  // The scaffold marks the site: a second pass edits nothing.
  auto r2 = LintContent("src/core/x.cc", fixed);
  ASSERT_EQ(CountRule(r2, "unordered-iter"), 1);  // the rule still fires
  int edits2 = 0;
  mlint::FixContent("src/core/x.cc", fixed, r2.findings, &edits2);
  EXPECT_EQ(edits2, 0);
}

TEST(MlintFix, SemanticRulesAreNeverAutoFixed) {
  const std::string src =
      "void Sweep(sim::ClusterSim* sim, std::int64_t n) {\n"
      "  exec::ParallelFor(n, 64, [&](const exec::Chunk& c) {\n"
      "    sim->ChargeParallelCpu(1.0);\n"
      "  });\n"
      "}\n";
  auto r = LintContent("src/core/x.cc", src);
  ASSERT_EQ(CountRule(r, "charge-in-parallel"), 1) << mlint::TextReport(r);
  int edits = 0;
  EXPECT_EQ(mlint::FixContent("src/core/x.cc", src, r.findings, &edits), src);
  EXPECT_EQ(edits, 0);
}

TEST(MlintFix, DiffShowsRewritesAndInsertions) {
  const std::string before = "void f(E& e) {\n  e.Boot();\n}\n";
  auto r = LintContent("src/core/x.cc", before);
  int edits = 0;
  std::string after =
      mlint::FixContent("src/core/x.cc", before, r.findings, &edits);
  ASSERT_EQ(edits, 1);
  std::string diff = mlint::FixDiff("src/core/x.cc", before, after);
  EXPECT_NE(diff.find("--- src/core/x.cc"), std::string::npos) << diff;
  EXPECT_NE(diff.find("+++ src/core/x.cc (fixed)"), std::string::npos);
  EXPECT_NE(diff.find("-  e.Boot();"), std::string::npos) << diff;
  EXPECT_NE(diff.find("+  (void)e.Boot();"), std::string::npos) << diff;
}

// ---- Index cache: pass-1 facts round-trip ----------------------------------

TEST(MlintIndexCache, FactsSurviveSerializeParse) {
  const std::string src =
      "#include \"core/util.h\"\n"
      "struct Acc {\n"
      "  void Add(double v) { total_ += v; }\n"
      "  double total_ = 0;\n"
      "};\n"
      "void ApplyCost(sim::ClusterSim* sim) {\n"
      "  sim->ChargeParallelCpu(1.0);\n"
      "}\n"
      "void Sweep(sim::ClusterSim* sim, std::int64_t n) {\n"
      "  exec::ParallelFor(n, 64, [&](const exec::Chunk& c) {"
      " ApplyCost(sim); });\n"
      "}\n";
  mlint::FileFacts facts = mlint::ExtractFacts(mlint::Parse("src/core/x.cc", src));
  facts.content_hash = mlint::ContentHash(src);

  auto parsed = mlint::ParseFactsCache(mlint::SerializeFacts({facts}));
  ASSERT_EQ(parsed.count("src/core/x.cc"), 1u);
  const mlint::FileFacts& rt = parsed.at("src/core/x.cc");

  EXPECT_EQ(rt.content_hash, facts.content_hash);
  EXPECT_EQ(rt.classes, facts.classes);
  EXPECT_EQ(rt.includes, facts.includes);
  ASSERT_EQ(rt.functions.size(), facts.functions.size());
  for (std::size_t i = 0; i < rt.functions.size(); ++i) {
    const auto& a = facts.functions[i];
    const auto& b = rt.functions[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(static_cast<int>(b.kind), static_cast<int>(a.kind));
    EXPECT_EQ(b.qualifier, a.qualifier);
    EXPECT_EQ(b.line, a.line);
    EXPECT_EQ(b.binds_scoped_ledger, a.binds_scoped_ledger);
    EXPECT_EQ(b.params, a.params);
    ASSERT_EQ(b.calls.size(), a.calls.size());
    for (std::size_t j = 0; j < b.calls.size(); ++j) {
      EXPECT_EQ(b.calls[j].name, a.calls[j].name);
      EXPECT_EQ(b.calls[j].member, a.calls[j].member);
      EXPECT_EQ(b.calls[j].line, a.calls[j].line);
    }
    ASSERT_EQ(b.hazards.size(), a.hazards.size());
    for (std::size_t j = 0; j < b.hazards.size(); ++j) {
      EXPECT_EQ(b.hazards[j].rule, a.hazards[j].rule);
      EXPECT_EQ(b.hazards[j].line, a.hazards[j].line);
      EXPECT_EQ(b.hazards[j].token, a.hazards[j].token);
      EXPECT_EQ(b.hazards[j].snippet, a.hazards[j].snippet);
    }
  }
  ASSERT_EQ(rt.roots.size(), facts.roots.size());
  for (std::size_t i = 0; i < rt.roots.size(); ++i) {
    EXPECT_EQ(rt.roots[i].desc, facts.roots[i].desc);
    EXPECT_EQ(rt.roots[i].line, facts.roots[i].line);
    EXPECT_EQ(rt.roots[i].calls.size(), facts.roots[i].calls.size());
  }
  // Sanity: the fixture really exercised every record type.
  EXPECT_FALSE(facts.classes.empty());
  EXPECT_FALSE(facts.includes.empty());
  EXPECT_FALSE(facts.roots.empty());
  bool any_hazard = false;
  for (const auto& fn : facts.functions) any_hazard |= !fn.hazards.empty();
  EXPECT_TRUE(any_hazard);
}

TEST(MlintIndexCache, MalformedBlobFallsBackToEmpty) {
  EXPECT_TRUE(mlint::ParseFactsCache("not a cache\nF junk\n").empty());
}

// ---- Include expansion: the header-hygiene blind spot ----------------------

TEST(MlintIncludeExpansion, TransitivelyIncludedHeaderGetsLinted) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "mlint_test_include_expansion";
  fs::remove_all(dir);
  fs::create_directories(dir / "src" / "core");
  {
    std::ofstream(dir / "src" / "core" / "a.cc")
        << "#include \"b.h\"\nint Use() { return core::kB; }\n";
    std::ofstream(dir / "src" / "core" / "b.h")  // no include guard
        << "namespace core { inline constexpr int kB = 1; }\n";
  }

  mlint::LintOptions opt;
  opt.lint_paths = {(dir / "src" / "core" / "a.cc").generic_string()};
  opt.index_paths = opt.lint_paths;
  auto r = mlint::LintProgram(opt);
  EXPECT_EQ(r.files_scanned, 2) << mlint::TextReport(r);
  EXPECT_EQ(CountRule(r, "header-hygiene"), 1) << mlint::TextReport(r);

  // With expansion off, the header stays a blind spot.
  opt.expand_includes = false;
  auto r2 = mlint::LintProgram(opt);
  EXPECT_EQ(r2.files_scanned, 1) << mlint::TextReport(r2);
  EXPECT_EQ(CountRule(r2, "header-hygiene"), 0) << mlint::TextReport(r2);

  fs::remove_all(dir);
}

}  // namespace
