#include <gtest/gtest.h>

#include <cmath>

#include "core/lasso_bsp.h"
#include "core/lasso_dataflow.h"
#include "core/lasso_gas.h"
#include "core/lasso_reldb.h"
#include "core/workloads.h"

namespace mlbench::core {
namespace {

using models::LassoState;

LassoExperiment SmallExp(bool super) {
  LassoExperiment exp;
  exp.config.machines = 5;
  exp.config.iterations = 40;
  exp.p = 12;
  exp.super_vertex = super;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 120;
  exp.config.seed = 321;
  exp.supers_per_machine = 10;
  return exp;
}

/// Max |beta_hat - beta_true| over the coefficients.
double BetaError(const LassoExperiment& exp, const LassoState& state) {
  LassoDataGen gen(exp.config.seed, exp.p);
  double worst = 0;
  for (std::size_t j = 0; j < exp.p; ++j) {
    worst = std::max(worst,
                     std::fabs(state.beta[j] - gen.true_beta()[j]));
  }
  return worst;
}

using Runner = RunResult (*)(const LassoExperiment&, LassoState*);

struct PlatformCase {
  const char* name;
  Runner runner;
  bool super;
};

class LassoPlatformSweep : public ::testing::TestWithParam<PlatformCase> {};

TEST_P(LassoPlatformSweep, RecoversSparseSignal) {
  auto [name, runner, super] = GetParam();
  LassoExperiment exp = SmallExp(super);
  LassoState state;
  RunResult r = runner(exp, &state);
  ASSERT_TRUE(r.ok()) << name << ": " << r.status.ToString();
  EXPECT_LT(BetaError(exp, state), 0.5) << name;
  EXPECT_GT(state.sigma2, 0.0) << name;
  for (double t : state.inv_tau2) EXPECT_GT(t, 0.0) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, LassoPlatformSweep,
    ::testing::Values(PlatformCase{"dataflow", &RunLassoDataflow, false},
                      PlatformCase{"reldb", &RunLassoRelDb, false},
                      PlatformCase{"gas_super", &RunLassoGas, true},
                      PlatformCase{"bsp_super", &RunLassoBsp, true}),
    [](const ::testing::TestParamInfo<PlatformCase>& info) {
      return info.param.name;
    });

TEST(LassoFailureModes, NaiveGiraphDiesOfAllocationChurn) {
  LassoExperiment exp;  // paper scale: p = 1000, 10^5 points/machine
  exp.config.machines = 5;
  exp.config.iterations = 1;
  exp.config.data.actual_per_machine = 50;
  exp.super_vertex = false;
  RunResult r = RunLassoBsp(exp, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status.IsOutOfMemory()) << r.status.ToString();
  EXPECT_NE(r.status.message().find("churn"), std::string::npos);
}

TEST(LassoShape, SimSqlInitializationDwarfsIterations) {
  // Figure 2's defining shape: hours of initialization (the Gram matrix
  // as an aggregate-GROUP BY) against minutes per iteration.
  LassoExperiment exp;
  exp.config.machines = 5;
  exp.config.iterations = 2;
  exp.config.data.actual_per_machine = 100;
  RunResult r = RunLassoRelDb(exp, nullptr);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_GT(r.init_seconds, 3600.0);  // hours
  EXPECT_LT(r.avg_iteration_seconds(), 1200.0);  // minutes
  EXPECT_GT(r.init_seconds, 10.0 * r.avg_iteration_seconds());
}

TEST(LassoShape, GraphTimesAreSecondsNotMinutes) {
  LassoExperiment exp;
  exp.config.machines = 5;
  exp.config.iterations = 2;
  exp.config.data.actual_per_machine = 100;
  exp.super_vertex = true;
  RunResult gas = RunLassoGas(exp, nullptr);
  ASSERT_TRUE(gas.ok());
  EXPECT_LT(gas.avg_iteration_seconds(), 120.0);
  RunResult bsp = RunLassoBsp(exp, nullptr);
  ASSERT_TRUE(bsp.ok());
  EXPECT_LT(bsp.avg_iteration_seconds(), 240.0);
}

}  // namespace
}  // namespace mlbench::core
