#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

// mlint: allow(raw-thread) — end-to-end suite: real concurrent clients
// against a live server are the subject under test
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
// mlint: allow(raw-thread) — see above
#include <mutex>
#include <string>
// mlint: allow(raw-thread) — see above
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace mlbench {
namespace {

using server::Client;
using server::ClientOptions;
using server::ExperimentRequest;
using server::ProgressMsg;
using server::ResultMsg;
using server::Server;
using server::ServerOptions;
using server::SqlRequest;

ExperimentRequest Gmm(std::uint64_t id, const char* platform,
                      std::uint64_t seed) {
  ExperimentRequest req;
  req.id = id;
  req.workload = "gmm";
  req.platform = platform;
  req.machines = 2;
  req.iterations = 2;
  req.seed = seed;
  req.actual_per_machine = 250;
  return req;
}

ClientOptions Opts(int port) {
  ClientOptions opts;
  opts.port = port;
  return opts;
}

SqlRequest Sql(std::uint64_t id, std::uint64_t seed) {
  SqlRequest req;
  req.id = id;
  req.seed = seed;
  req.rows = 64;
  req.sql = "SELECT grp, SUM(val) FROM data GROUP BY grp";
  return req;
}

TEST(ServerTest, PingPongAndCounters) {
  Server srv(ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  ASSERT_GT(srv.port(), 0);

  Client client(Opts(srv.port()));
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Ping().ok());
  client.Close();
  srv.Stop();
  EXPECT_GE(srv.counters().sessions_accepted, 1);
  EXPECT_EQ(srv.counters().protocol_errors, 0);
}

TEST(ServerTest, SqlIsDeterministicAcrossRuns) {
  Server srv(ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  Client client(Opts(srv.port()));

  auto first = client.RunSql(Sql(1, /*seed=*/99));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->code, StatusCode::kOk);
  EXPECT_GT(first->result_rows, 0);

  auto second = client.RunSql(Sql(2, /*seed=*/99));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->digest, first->digest)
      << "same seed+statement must be bit-identical";

  auto other_seed = client.RunSql(Sql(3, /*seed=*/100));
  ASSERT_TRUE(other_seed.ok());
  EXPECT_NE(other_seed->digest, first->digest);
  srv.Stop();
}

TEST(ServerTest, ExperimentStreamsProgressWhenAsked) {
  Server srv(ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  Client client(Opts(srv.port()));

  ExperimentRequest req = Gmm(7, "dataflow", 2014);
  req.want_progress = true;
  std::vector<ProgressMsg> progress;
  auto res = client.RunExperiment(req, &progress);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->code, StatusCode::kOk);
  // Heartbeats fire at each iteration boundary (the cancel poll points),
  // i.e. with 0 and 1 iterations completed for a 2-iteration run.
  ASSERT_EQ(progress.size(), 2u) << "one heartbeat per iteration";
  EXPECT_EQ(progress.front().iteration, 0);
  EXPECT_EQ(progress.back().iteration, 1);
  EXPECT_EQ(progress.back().total, 2);
  EXPECT_EQ(res->iteration_seconds.size(), 2u);
  srv.Stop();
}

// The bit-identical-under-concurrency guarantee: N sessions running the
// same request stream concurrently produce digest-for-digest the results
// of a serial replay.
TEST(ServerTest, ConcurrentSessionsMatchSerialDigests) {
  Server srv(ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());

  struct Work {
    bool is_sql;
    ExperimentRequest exp;
    SqlRequest sql;
  };
  std::vector<Work> stream;
  const char* platforms[] = {"dataflow", "gas", "reldb", "bsp"};
  for (std::uint64_t i = 0; i < 8; ++i) {
    Work w;
    if (i % 4 == 3) {
      w.is_sql = true;
      w.sql = Sql(i, 7000 + i);
    } else {
      w.is_sql = false;
      w.exp = Gmm(i, platforms[i % 4], 9000 + i);
    }
    stream.push_back(w);
  }

  auto run_one = [](Client& c, const Work& w) {
    return w.is_sql ? c.RunSql(w.sql) : c.RunExperiment(w.exp);
  };

  // Serial baseline through a single session.
  std::map<std::uint64_t, std::uint64_t> serial;
  {
    Client client(Opts(srv.port()));
    for (const Work& w : stream) {
      auto res = run_one(client, w);
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      serial[res->id] = res->digest;
    }
  }

  // Concurrent replay: 4 sessions, each its own client, racing.
  std::map<std::uint64_t, std::uint64_t> concurrent;
  // mlint: allow(raw-thread) — the race under test
  std::mutex mu;
  // mlint: allow(raw-thread) — see above
  std::vector<std::thread> workers;
  // mlint: allow(raw-thread) — work queue for the racing clients
  std::atomic<std::size_t> next{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      Client client(Opts(srv.port()));
      for (std::size_t i = next.fetch_add(1); i < stream.size();
           i = next.fetch_add(1)) {
        auto res = run_one(client, stream[i]);
        ASSERT_TRUE(res.ok()) << res.status().ToString();
        // mlint: allow(raw-thread) — guards the digest map
        std::lock_guard<std::mutex> lock(mu);
        concurrent[res->id] = res->digest;
      }
    });
  }
  for (auto& th : workers) th.join();
  srv.Stop();

  ASSERT_EQ(concurrent.size(), serial.size());
  for (const auto& [id, digest] : serial) {
    EXPECT_EQ(concurrent.at(id), digest) << "request " << id;
  }
}

TEST(ServerTest, RejectsExperimentsThatCanNeverFit) {
  ServerOptions opts;
  opts.budget_bytes = 1000;  // smaller than any experiment's estimate
  Server srv(opts);
  ASSERT_TRUE(srv.Start().ok());

  ClientOptions copts;
  copts.port = srv.port();
  copts.retry.max_retries = 1;  // don't grind through the full backoff
  Client client(copts);
  auto res = client.RunExperiment(Gmm(1, "dataflow", 2014));
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(client.stats().sheds_seen, 0);
  srv.Stop();
  EXPECT_GT(srv.admission_stats().rejected_never_fits, 0);
  // The reject path sent a well-formed kError, not a dropped connection.
  EXPECT_GT(srv.counters().errors_sent, 0);
  EXPECT_EQ(srv.counters().protocol_errors, 0);
}

TEST(ServerTest, QueuedSessionsAllCompleteWhenBudgetFitsOneAtATime) {
  constexpr int kSessions = 6;
  // Whether anyone actually *queued* depends on host scheduling: under a
  // loaded machine the first run can finish before the other sessions
  // even connect, and everyone admits instantly. Each attempt asserts the
  // hard invariants (all complete, never oversubscribed); attempts repeat
  // until at least one session demonstrably waited.
  std::int64_t admitted_after_wait = 0;
  for (int attempt = 0; attempt < 3 && admitted_after_wait == 0; ++attempt) {
    ServerOptions opts;
    opts.budget_bytes = 160e3;  // one ~86KB gmm reservation at a time
    opts.max_queue = 16;
    Server srv(opts);
    ASSERT_TRUE(srv.Start().ok());

    // mlint: allow(raw-thread) — counts completions across sessions
    std::atomic<int> ok{0};
    // mlint: allow(raw-thread) — concurrent sessions contending for admission
    std::vector<std::thread> workers;
    for (int i = 0; i < kSessions; ++i) {
      workers.emplace_back([&, i] {
        Client client(Opts(srv.port()));
        ExperimentRequest req =
            Gmm(static_cast<std::uint64_t>(i), "dataflow", 5000 + i);
        req.iterations = 8;  // hold the reservation long enough to overlap
        auto res = client.RunExperiment(req);
        // A deterministic Fail cell (res->code != kOk) still proves the
        // admission path: what matters is a well-formed terminal kResult.
        if (res.ok()) ok.fetch_add(1);
      });
      if (i == 0) {
        // Let the first session take the whole budget before the rest
        // pile in, so they contend with a live reservation.
        for (int spin = 0; spin < 2000 && srv.admission_stats().admitted == 0;
             ++spin) {
          // mlint: allow(raw-thread) — polling the server's admission state
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    }
    for (auto& th : workers) th.join();
    srv.Stop();

    EXPECT_EQ(ok.load(), kSessions) << "queued sessions must drain to done";
    auto stats = srv.admission_stats();
    EXPECT_EQ(stats.admitted, kSessions);
    EXPECT_LE(stats.peak_reserved_bytes, opts.budget_bytes)
        << "admission oversubscribed the budget";
    admitted_after_wait = stats.admitted_after_wait;
  }
  EXPECT_GE(admitted_after_wait, 1) << "nobody queued in any attempt";
}

TEST(ServerTest, MalformedFrameDropsThatConnectionOnly) {
  Server srv(ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());

  // Raw socket speaking garbage: a length word past the frame ceiling.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(srv.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::uint32_t bad_len = server::kMaxFrameBytes * 2;
  char hdr[5];
  std::memcpy(hdr, &bad_len, 4);
  hdr[4] = 3;  // kPing
  ASSERT_EQ(::send(fd, hdr, sizeof(hdr), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(hdr)));
  // The server must close this connection (EOF), not try to resync.
  char buf[16];
  ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  EXPECT_LE(n, 0) << "server kept a corrupt stream alive";
  ::close(fd);

  // ... and keep serving well-behaved clients.
  Client client(Opts(srv.port()));
  EXPECT_TRUE(client.Ping().ok());
  srv.Stop();
  EXPECT_GE(srv.counters().protocol_errors, 1);
}

TEST(ServerTest, DrainCancelsInflightWithWellFormedResponse) {
  Server srv(ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());

  // A run long enough (~seconds) that the drain below lands mid-flight.
  ExperimentRequest slow;
  slow.id = 1;
  slow.workload = "hmm";
  slow.platform = "bsp";
  slow.machines = 4;
  slow.iterations = 3;
  slow.seed = 2014;
  slow.actual_per_machine = 20;

  Status seen = Status::OK();
  // mlint: allow(raw-thread) — client blocks while the main thread drains
  std::thread runner([&] {
    ClientOptions copts;
    copts.port = srv.port();
    copts.retry.max_retries = 0;  // the drained server won't come back
    Client client(copts);
    auto res = client.RunExperiment(slow);
    if (!res.ok()) {
      seen = res.status();
    } else if (res->code != StatusCode::kOk) {
      seen = Status::Internal("failed cell");
    }
  });

  // mlint: allow(raw-thread) — lets the run get in-flight before drain
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  srv.RequestDrain();
  srv.CancelInflight();
  srv.Join();
  runner.join();

  // The client saw a clean terminal response or a clean close — never a
  // torn frame (which would surface as InvalidArgument).
  ASSERT_FALSE(seen.ok()) << "drain landed after the run finished; make "
                             "the workload slower";
  EXPECT_NE(seen.code(), StatusCode::kInvalidArgument) << seen.ToString();

  // Fully stopped: new connections are refused.
  Client late(Opts(srv.port()));
  EXPECT_FALSE(late.Connect().ok());
}

}  // namespace
}  // namespace mlbench
