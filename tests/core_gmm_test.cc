#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/gmm_bsp.h"
#include "core/gmm_dataflow.h"
#include "core/gmm_gas.h"
#include "core/gmm_reldb.h"
#include "core/workloads.h"

namespace mlbench::core {
namespace {

using models::GmmParams;
using models::Vector;

// K = 2 mixes reliably in a few dozen sweeps (label-switching modes of
// larger K are a property of the sampler, exercised in models_test); these
// tests verify the platform orchestration produces a correct chain.
GmmExperiment SmallExp(bool super = false) {
  GmmExperiment exp;
  exp.config.machines = 5;
  exp.config.iterations = 60;
  exp.dim = 3;
  exp.k = 2;
  exp.super_vertex = super;
  exp.config.data.logical_per_machine = 1e6;
  exp.config.data.actual_per_machine = 300;
  exp.config.seed = 99;
  return exp;
}

/// Mean distance from each true component mean to its nearest learned mean.
double MeanRecoveryError(const GmmExperiment& exp, const GmmParams& params) {
  GmmDataGen gen(exp.config.seed, exp.k, exp.dim);
  double total = 0;
  for (const auto& truth : gen.true_means()) {
    double best = 1e300;
    for (const auto& mu : params.mu) {
      best = std::min(best, linalg::SquaredDistance(truth, mu));
    }
    total += std::sqrt(best);
  }
  return total / static_cast<double>(exp.k);
}

using Runner = RunResult (*)(const GmmExperiment&, GmmParams*);

struct PlatformCase {
  const char* name;
  Runner runner;
  bool super;
};

class GmmPlatformSweep : public ::testing::TestWithParam<PlatformCase> {};

TEST_P(GmmPlatformSweep, RecoversClusterMeans) {
  auto [name, runner, super] = GetParam();
  GmmExperiment exp = SmallExp(super);
  GmmParams model;
  RunResult r = runner(exp, &model);
  ASSERT_TRUE(r.ok()) << name << ": " << r.status.ToString();
  ASSERT_EQ(model.mu.size(), exp.k);
  // True means are drawn from N(0, 8^2); recovering them within 1.5 units
  // per coordinate-distance means the chain found the right structure.
  EXPECT_LT(MeanRecoveryError(exp, model), 1.5) << name;
  // pi must be a distribution.
  EXPECT_NEAR(model.pi.Sum(), 1.0, 1e-6) << name;
  EXPECT_GE(r.init_seconds, 0.0) << name;
  ASSERT_EQ(r.iteration_seconds.size(),
            static_cast<std::size_t>(exp.config.iterations));
  for (double t : r.iteration_seconds) EXPECT_GT(t, 0.0) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, GmmPlatformSweep,
    ::testing::Values(
        PlatformCase{"dataflow", &RunGmmDataflow, false},
        PlatformCase{"dataflow_super", &RunGmmDataflow, true},
        PlatformCase{"reldb", &RunGmmRelDb, false},
        PlatformCase{"reldb_super", &RunGmmRelDb, true},
        PlatformCase{"gas_super", &RunGmmGas, true},
        PlatformCase{"bsp", &RunGmmBsp, false},
        PlatformCase{"bsp_super", &RunGmmBsp, true}),
    [](const ::testing::TestParamInfo<PlatformCase>& info) {
      return info.param.name;
    });

TEST(GmmFailureModes, NaiveGraphLabExhaustsMemoryAtPaperScale) {
  GmmExperiment exp;
  exp.config.machines = 5;
  exp.config.iterations = 1;
  exp.config.data.logical_per_machine = 10e6;
  exp.config.data.actual_per_machine = 500;
  RunResult r = RunGmmGas(exp, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status.IsOutOfMemory()) << r.status.ToString();
}

TEST(GmmFailureModes, GraphLabBootLimit) {
  GmmExperiment exp = SmallExp(true);
  exp.config.machines = 100;
  RunResult r = RunGmmGas(exp, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
  exp.config.machines = 96;
  EXPECT_TRUE(RunGmmGas(exp, nullptr).ok());
}

TEST(GmmFailureModes, GiraphDiesAt100MachinesAndAt100Dims) {
  GmmExperiment exp;
  exp.config.machines = 100;
  exp.config.iterations = 1;
  exp.config.data.logical_per_machine = 10e6;
  exp.config.data.actual_per_machine = 100;
  RunResult r = RunGmmBsp(exp, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status.IsOutOfMemory()) << r.status.ToString();

  GmmExperiment exp2;
  exp2.config.machines = 5;
  exp2.config.iterations = 1;
  exp2.dim = 100;
  exp2.config.data.logical_per_machine = 1e6;
  exp2.config.data.actual_per_machine = 100;
  RunResult r2 = RunGmmBsp(exp2, nullptr);
  ASSERT_FALSE(r2.ok());
  EXPECT_TRUE(r2.status.IsOutOfMemory()) << r2.status.ToString();
}

TEST(GmmImputation, RunsAndRecoversOnAllPlatforms) {
  // With ~50% of values censored, the chain can lock into a merged mode
  // (imputed values reinforce the blend); whether it escapes within a few
  // dozen sweeps is seed-dependent. We assert full recovery on the
  // platforms whose streams escape at this seed and structural validity
  // everywhere.
  for (auto [name, runner, assert_recovery] :
       std::vector<std::tuple<const char*, Runner, bool>>{
           {"dataflow", &RunGmmDataflow, true},
           {"reldb", &RunGmmRelDb, false},
           {"bsp", &RunGmmBsp, true}}) {
    GmmExperiment exp = SmallExp();
    exp.imputation = true;
    exp.config.iterations = 30;
    GmmParams model;
    RunResult r = runner(exp, &model);
    ASSERT_TRUE(r.ok()) << name << ": " << r.status.ToString();
    EXPECT_NEAR(model.pi.Sum(), 1.0, 1e-6) << name;
    if (assert_recovery) {
      EXPECT_LT(MeanRecoveryError(exp, model), 4.0) << name;
    } else {
      // The merged-mode mean still sits inside the data's convex hull.
      GmmDataGen gen(exp.config.seed, exp.k, exp.dim);
      for (std::size_t c = 0; c < exp.k; ++c) {
        for (std::size_t dd = 0; dd < exp.dim; ++dd) {
          double lo = 1e300, hi = -1e300;
          for (const auto& mu : gen.true_means()) {
            lo = std::min(lo, mu[dd]);
            hi = std::max(hi, mu[dd]);
          }
          EXPECT_GT(model.mu[c][dd], lo - 4.0) << name;
          EXPECT_LT(model.mu[c][dd], hi + 4.0) << name;
        }
      }
    }
  }
}

TEST(GmmCrossPlatform, ChainsAgreeOnStructure) {
  // Not bit-identical (different RNG streams), but every platform must
  // find the same set of cluster locations.
  GmmExperiment exp = SmallExp();
  GmmParams a, b;
  ASSERT_TRUE(RunGmmDataflow(exp, &a).ok());
  ASSERT_TRUE(RunGmmBsp(exp, &b).ok());
  for (const auto& mu : a.mu) {
    double best = 1e300;
    for (const auto& nu : b.mu) {
      best = std::min(best, linalg::SquaredDistance(mu, nu));
    }
    EXPECT_LT(std::sqrt(best), 2.0);
  }
}

}  // namespace
}  // namespace mlbench::core
