#include <gtest/gtest.h>

#include "core/workloads.h"

namespace mlbench::core {
namespace {

TEST(GmmDataGenTest, DeterministicByIndex) {
  GmmDataGen a(7, 10, 10), b(7, 10, 10);
  EXPECT_EQ(a.Point(3, 41), b.Point(3, 41));
  EXPECT_NE(a.Point(3, 41), a.Point(3, 42));
  EXPECT_NE(a.Point(2, 41), a.Point(3, 41));
}

TEST(GmmDataGenTest, PointsClusterAroundTrueMeans) {
  GmmDataGen gen(9, 4, 3);
  // Every point should be within a few sigma of SOME true mean.
  for (long long j = 0; j < 200; ++j) {
    auto x = gen.Point(0, j);
    double best = 1e300;
    for (const auto& mu : gen.true_means()) {
      best = std::min(best, linalg::SquaredDistance(x, mu));
    }
    EXPECT_LT(best, 36.0) << "point " << j;  // within 6 sigma in 3-d
  }
}

TEST(LassoDataGenTest, ResponseFollowsSparseModel) {
  LassoDataGen gen(11, 50, 5);
  int nonzero = 0;
  for (std::size_t i = 0; i < 50; ++i) nonzero += gen.true_beta()[i] != 0;
  EXPECT_LE(nonzero, 5);
  EXPECT_GE(nonzero, 1);
  // Residual variance under the true beta must be ~1 (the noise).
  double sse = 0;
  const int n = 500;
  for (int j = 0; j < n; ++j) {
    auto [x, y] = gen.Sample(0, j);
    double r = y - linalg::Dot(gen.true_beta(), x);
    sse += r * r;
  }
  EXPECT_NEAR(sse / n, 1.0, 0.25);
}

TEST(CorpusGenTest, DocumentsHaveExpectedShape) {
  CorpusGen gen(13, 1000, 210);
  double total_len = 0;
  for (long long j = 0; j < 200; ++j) {
    auto doc = gen.Document(0, j);
    total_len += static_cast<double>(doc.size());
    for (auto w : doc) ASSERT_LT(w, 1000u);
  }
  EXPECT_NEAR(total_len / 200.0, 210.0, 15.0);
}

TEST(CorpusGenTest, WordFrequenciesAreZipfLike) {
  CorpusGen gen(17, 100, 200, 1.0);
  std::vector<int> counts(100, 0);
  for (long long j = 0; j < 300; ++j) {
    for (auto w : gen.Document(0, j)) ++counts[w];
  }
  // Rank-1 word must dominate rank-50 by roughly the Zipf ratio.
  EXPECT_GT(counts[0], 10 * counts[49]);
}

TEST(CensorPointTest, DeterministicAndPartial) {
  linalg::Vector x(10, 5.0);
  auto a = CensorPoint(3, 1, 2, x);
  auto b = CensorPoint(3, 1, 2, x);
  EXPECT_EQ(a.missing, b.missing);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.x[i], a.missing[i] ? 0.0 : 5.0);
  }
}

TEST(CensorPointTest, AboutHalfCensoredOverall) {
  linalg::Vector x(10, 1.0);
  int censored = 0;
  for (long long j = 0; j < 400; ++j) {
    auto cp = CensorPoint(21, 0, j, x);
    for (bool m : cp.missing) censored += m;
  }
  EXPECT_NEAR(censored / 4000.0, 0.5, 0.06);
}

}  // namespace
}  // namespace mlbench::core
