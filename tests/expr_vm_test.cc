#include "reldb/expr_vm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/gmm_reldb.h"
#include "core/hmm_reldb.h"
#include "core/lasso_reldb.h"
#include "core/lda_reldb.h"
#include "exec/thread_pool.h"
#include "reldb/database.h"
#include "reldb/rel.h"
#include "reldb/sql.h"
#include "sim/cluster_sim.h"
#include "sim/machine.h"

namespace mlbench {
namespace {

using core::RunResult;
using reldb::ColExpr;
using reldb::ColumnBatch;
using reldb::Database;
using reldb::ExprProgram;
using reldb::Rel;
using reldb::ScalarExpr;
using reldb::Schema;
using reldb::SqlContext;
using reldb::Table;
using reldb::Tuple;

using Column = ColumnBatch::Column;

/// Bitwise double comparison: NaN == NaN, and -0.0 != 0.0 — exactly the
/// "bit-identical" contract the VM promises against the interpreter.
std::uint64_t Bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

// ---- Compiler / VM unit tests ---------------------------------------------

class ExprVmTest : public ::testing::Test {
 protected:
  ExprVmTest() {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<std::int64_t> id, k;
    std::vector<double> x, y;
    for (std::int64_t i = 0; i < 11; ++i) {
      id.push_back(i);
      k.push_back(i % 3);
      x.push_back(0.25 * static_cast<double>(i) - 1.0);
      y.push_back(static_cast<double>((i * 7) % 5) - 2.0);
    }
    // Edge values: zero divisor, NaN and infinity operands.
    y[3] = 0.0;
    x[5] = nan;
    x[8] = inf;
    y[9] = -0.0;
    batch_ = ColumnBatch(Schema{"id", "x", "y", "k"},
                         std::vector<Column>{Column::Ints(id),
                                             Column::Doubles(x),
                                             Column::Doubles(y),
                                             Column::Ints(k)},
                         1.0);
  }

  /// Compiles `e` and checks the batch evaluator against the row
  /// interpreter bit-for-bit on every row, over the full range and over a
  /// sub-range (exercising the begin/end offsets the chunked loop uses).
  void ExpectRowBatchParity(const ScalarExpr& e) {
    const ExprProgram prog = ExprProgram::Compile(e);
    const std::size_t n = batch_.num_rows();
    std::vector<double> row_vals(n);
    Tuple scratch_row;
    for (std::size_t r = 0; r < n; ++r) {
      batch_.MaterializeRow(r, &scratch_row);
      row_vals[r] = prog.EvalRow(scratch_row);
    }
    ExprProgram::Scratch scratch;
    std::vector<double> batch_vals(n);
    prog.EvalBatch(batch_, 0, static_cast<std::int64_t>(n),
                   batch_vals.data(), &scratch);
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_EQ(Bits(row_vals[r]), Bits(batch_vals[r])) << "row " << r;
    }
    std::vector<double> sub(4);
    prog.EvalBatch(batch_, 3, 7, sub.data(), &scratch);
    for (std::size_t r = 0; r < 4; ++r) {
      EXPECT_EQ(Bits(row_vals[r + 3]), Bits(sub[r])) << "sub-range row " << r;
    }
  }

  ColumnBatch batch_;
};

TEST_F(ExprVmTest, LoadColCastsIntsLikeAsDouble) {
  ExpectRowBatchParity(ScalarExpr::Col(0));
  ExpectRowBatchParity(ScalarExpr::Col(1));
}

TEST_F(ExprVmTest, LoadConst) {
  ExpectRowBatchParity(ScalarExpr::Const(3.75));
  const ExprProgram prog = ExprProgram::Compile(ScalarExpr::Const(-2.5));
  EXPECT_EQ(prog.insns().size(), 1u);
  EXPECT_EQ(prog.num_regs(), 1u);
  EXPECT_EQ(prog.EvalRow(Tuple{}), -2.5);
}

TEST_F(ExprVmTest, Add) {
  ExpectRowBatchParity(ScalarExpr::Add(ScalarExpr::Col(1), ScalarExpr::Col(2)));
}

TEST_F(ExprVmTest, Sub) {
  ExpectRowBatchParity(ScalarExpr::Sub(ScalarExpr::Col(2), ScalarExpr::Col(0)));
}

TEST_F(ExprVmTest, Mul) {
  ExpectRowBatchParity(ScalarExpr::Mul(ScalarExpr::Col(1), ScalarExpr::Col(1)));
}

TEST_F(ExprVmTest, DivIncludingZeroDivisor) {
  ExpectRowBatchParity(ScalarExpr::Div(ScalarExpr::Col(1), ScalarExpr::Col(2)));
}

TEST_F(ExprVmTest, MaxKeepsStdMaxOperandOrder) {
  ExpectRowBatchParity(ScalarExpr::Max(ScalarExpr::Col(1), ScalarExpr::Col(2)));
  // std::max(a, b) returns a when the comparison is false — including for
  // NaN operands. The kMax opcode must agree on both operand orders.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto run = [](double a, double b) {
    const ExprProgram p = ExprProgram::Compile(
        ScalarExpr::Max(ScalarExpr::Col(0), ScalarExpr::Col(1)));
    return p.EvalRow(Tuple{a, b});
  };
  EXPECT_EQ(Bits(run(1.0, nan)), Bits(std::max(1.0, nan)));
  EXPECT_EQ(Bits(run(nan, 1.0)), Bits(std::max(nan, 1.0)));
}

TEST_F(ExprVmTest, CallOpcodes) {
  ExpectRowBatchParity(
      ScalarExpr::Call(ScalarExpr::Fn1::kSqrt, ScalarExpr::Col(1)));
  ExpectRowBatchParity(
      ScalarExpr::Call(ScalarExpr::Fn1::kExp, ScalarExpr::Col(2)));
  ExpectRowBatchParity(
      ScalarExpr::Call(ScalarExpr::Fn1::kLog, ScalarExpr::Col(1)));
  ExpectRowBatchParity(
      ScalarExpr::Call(ScalarExpr::Fn1::kAbs, ScalarExpr::Col(2)));
}

TEST_F(ExprVmTest, ComparisonOpcodes) {
  using Cmp = ScalarExpr::CmpOp;
  for (Cmp op : {Cmp::kEq, Cmp::kNe, Cmp::kLt, Cmp::kLe, Cmp::kGt, Cmp::kGe}) {
    ExpectRowBatchParity(
        ScalarExpr::Compare(op, ScalarExpr::Col(1), ScalarExpr::Col(2)));
  }
}

TEST_F(ExprVmTest, IntInMembership) {
  ExpectRowBatchParity(ScalarExpr::IntIn(3, {0, 2}));
  ExpectRowBatchParity(ScalarExpr::IntIn(0, {}));
  const ExprProgram prog = ExprProgram::Compile(ScalarExpr::IntIn(3, {1}));
  ASSERT_EQ(prog.sets().size(), 1u);
  EXPECT_EQ(prog.sets()[0], (std::vector<std::int64_t>{1}));
}

TEST_F(ExprVmTest, RegisterAllocationIsStackShaped) {
  // (x + y) * (x - y): left subtree reuses register 0, right uses 1 and 2.
  const ExprProgram prog = ExprProgram::Compile(ScalarExpr::Mul(
      ScalarExpr::Add(ScalarExpr::Col(1), ScalarExpr::Col(2)),
      ScalarExpr::Sub(ScalarExpr::Col(1), ScalarExpr::Col(2))));
  EXPECT_EQ(prog.insns().size(), 7u);
  EXPECT_EQ(prog.num_regs(), 3u);
  ExpectRowBatchParity(ScalarExpr::Mul(
      ScalarExpr::Add(ScalarExpr::Col(1), ScalarExpr::Col(2)),
      ScalarExpr::Sub(ScalarExpr::Col(1), ScalarExpr::Col(2))));
}

TEST_F(ExprVmTest, SelectBatchMatchesRowPredicate) {
  const ScalarExpr pred = ScalarExpr::Compare(
      ScalarExpr::CmpOp::kGt, ScalarExpr::Col(1), ScalarExpr::Col(2));
  const ExprProgram prog = ExprProgram::Compile(pred);
  std::vector<std::uint32_t> want;
  Tuple row;
  for (std::size_t r = 0; r < batch_.num_rows(); ++r) {
    batch_.MaterializeRow(r, &row);
    if (prog.EvalRowPred(row)) want.push_back(static_cast<std::uint32_t>(r));
  }
  ExprProgram::Scratch scratch;
  std::vector<std::uint32_t> got;
  prog.SelectBatch(batch_, 0, static_cast<std::int64_t>(batch_.num_rows()),
                   &got, &scratch);
  EXPECT_EQ(want, got);
  // Offset ranges keep global row indices.
  std::vector<std::uint32_t> offset_got;
  prog.SelectBatch(batch_, 4, static_cast<std::int64_t>(batch_.num_rows()),
                   &offset_got, &scratch);
  std::vector<std::uint32_t> offset_want;
  for (std::uint32_t r : want) {
    if (r >= 4) offset_want.push_back(r);
  }
  EXPECT_EQ(offset_want, offset_got);
}

// ---- Seeded random-expression property test -------------------------------

/// Generates a random ScalarExpr over the fixture's schema (columns 0/3
/// int, 1/2 double). Depth-bounded; every opcode is reachable.
ScalarExpr RandomExpr(std::mt19937_64& rng, int depth) {
  auto pick = [&rng](std::uint64_t n) {
    return static_cast<std::size_t>(rng() % n);
  };
  if (depth <= 0 || pick(4) == 0) {
    switch (pick(3)) {
      case 0:
        return ScalarExpr::Col(pick(4));
      case 1:
        return ScalarExpr::Const(static_cast<double>(rng() % 2001) * 0.01 -
                                 10.0);
      default:
        return ScalarExpr::IntIn(pick(2) == 0 ? 0 : 3,
                                 {static_cast<std::int64_t>(rng() % 5),
                                  static_cast<std::int64_t>(rng() % 5)});
    }
  }
  switch (pick(3)) {
    case 0: {
      auto op = static_cast<ScalarExpr::BinOp>(pick(5));
      return ScalarExpr::Bin(op, RandomExpr(rng, depth - 1),
                             RandomExpr(rng, depth - 1));
    }
    case 1: {
      auto op = static_cast<ScalarExpr::CmpOp>(pick(6));
      return ScalarExpr::Compare(op, RandomExpr(rng, depth - 1),
                                 RandomExpr(rng, depth - 1));
    }
    default: {
      auto fn = static_cast<ScalarExpr::Fn1>(pick(4));
      return ScalarExpr::Call(fn, RandomExpr(rng, depth - 1));
    }
  }
}

TEST_F(ExprVmTest, RandomExpressionsMatchBitForBit) {
  std::mt19937_64 rng(20260807);
  for (int trial = 0; trial < 200; ++trial) {
    ScalarExpr e = RandomExpr(rng, 5);
    SCOPED_TRACE("trial " + std::to_string(trial));
    ExpectRowBatchParity(e);
  }
}

// ---- Operator- and SQL-level VM vs interpreter parity ---------------------
//
// Two columnar Databases differing only in the expr_vm flag run the same
// plan; tuples (typed variant equality), simulated time, and the RNG
// stream must match bit-for-bit — the MLBENCH_RELDB_INTERP contract.

void ExpectSameTable(const Table& a, const Table& b) {
  ASSERT_EQ(a.schema().columns(), b.schema().columns());
  EXPECT_EQ(a.scale(), b.scale());
  ASSERT_EQ(a.rows().size(), b.rows().size());
  for (std::size_t r = 0; r < a.rows().size(); ++r) {
    EXPECT_TRUE(a.rows()[r] == b.rows()[r]) << "row " << r;
  }
}

class VmInterpParity : public ::testing::Test {
 protected:
  VmInterpParity()
      : sim_vm_(sim::Ec2M2XLargeCluster(5)),
        sim_interp_(sim::Ec2M2XLargeCluster(5)),
        vm_(&sim_vm_, sim::RelDbCosts{}, 42),
        interp_(&sim_interp_, sim::RelDbCosts{}, 42) {
    vm_.set_columnar(true);
    vm_.set_expr_vm(true);
    interp_.set_columnar(true);
    interp_.set_expr_vm(false);

    Table data(Schema{"data_id", "dim_id", "data_val"}, 1e6);
    for (std::int64_t p = 0; p < 40; ++p) {
      for (std::int64_t d = 0; d < 3; ++d) {
        data.Append(Tuple{p, d, static_cast<double>(10 * p + d + 1) * 0.25});
      }
    }
    Load("data", data);

    Table members(Schema{"data_id", "clus_id"}, 1e6);
    for (std::int64_t p = 0; p < 40; ++p) members.Append(Tuple{p, p % 7});
    Load("membership[0]", members);
  }

  void Load(const std::string& name, const Table& t) {
    vm_.Put(name, t);
    interp_.Put(name, t);
  }

  void ExpectParity(const std::function<Rel(Database&)>& plan) {
    vm_.BeginQuery("q");
    Rel v = plan(vm_);
    vm_.EndQuery();
    interp_.BeginQuery("q");
    Rel t = plan(interp_);
    interp_.EndQuery();
    ExpectSameTable(v.table(), t.table());
    EXPECT_EQ(sim_vm_.elapsed_seconds(), sim_interp_.elapsed_seconds());
    EXPECT_EQ(vm_.rng().NextU64(), interp_.rng().NextU64());
  }

  void ExpectSqlParity(const std::string& sql) {
    SqlContext vm_ctx(&vm_);
    SqlContext interp_ctx(&interp_);
    auto v = vm_ctx.Execute(sql);
    auto t = interp_ctx.Execute(sql);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    ExpectSameTable(*v, *t);
    EXPECT_EQ(sim_vm_.elapsed_seconds(), sim_interp_.elapsed_seconds());
    EXPECT_EQ(vm_.rng().NextU64(), interp_.rng().NextU64());
  }

  sim::ClusterSim sim_vm_, sim_interp_;
  Database vm_, interp_;
};

TEST_F(VmInterpParity, CompiledFilter) {
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "data").Filter(ScalarExpr::Compare(
        ScalarExpr::CmpOp::kGt, ScalarExpr::Col(2), ScalarExpr::Const(17.0)));
  });
}

TEST_F(VmInterpParity, CompiledFilterOnRowEngineFallsBack) {
  vm_.set_columnar(false);
  interp_.set_columnar(false);
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "data").Filter(ScalarExpr::Compare(
        ScalarExpr::CmpOp::kLe, ScalarExpr::Col(2), ScalarExpr::Const(40.0)));
  });
}

TEST_F(VmInterpParity, FilterIntIn) {
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "data").FilterIntIn("dim_id", {0, 2});
  });
}

TEST_F(VmInterpParity, FilterAllKeepsEverythingAndChargesLikeFilter) {
  ExpectParity([](Database& db) { return Rel::Scan(db, "data").FilterAll(); });
  // FilterAll must charge exactly what a keep-everything Filter charges
  // and return the same relation. The two clocks are bit-equal here, so
  // running one form on each database keeps the comparison exact.
  vm_.BeginQuery("all");
  Rel all = Rel::Scan(vm_, "data").FilterAll();
  vm_.EndQuery();
  interp_.BeginQuery("lambda");
  Rel keep =
      Rel::Scan(interp_, "data").Filter([](const Tuple&) { return true; });
  interp_.EndQuery();
  EXPECT_EQ(sim_vm_.elapsed_seconds(), sim_interp_.elapsed_seconds());
  ExpectSameTable(all.table(), keep.table());
  EXPECT_TRUE(all.columnar());
}

TEST_F(VmInterpParity, StructuredProjectCompiledColumns) {
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "data").Project(
        Schema{"data_id", "kind", "unit", "twice", "root"},
        {ColExpr::Col(0), ColExpr::Const(std::int64_t{3}), ColExpr::Const(1.5),
         ColExpr::Expr(ScalarExpr::Mul(ScalarExpr::Col(2),
                                       ScalarExpr::Const(2.0))),
         ColExpr::Expr(ScalarExpr::Call(ScalarExpr::Fn1::kSqrt,
                                        ScalarExpr::Col(2)))});
  });
}

TEST_F(VmInterpParity, StructuredProjectMixesCompiledAndLambdaSlots) {
  ExpectParity([](Database& db) {
    return Rel::Scan(db, "data").Project(
        Schema{"compiled", "opaque"},
        {ColExpr::Expr(ScalarExpr::Add(ScalarExpr::Col(2),
                                       ScalarExpr::Const(1.0))),
         ColExpr::Fn([](const Tuple& t) {
           return reldb::AsDouble(t[2]) * reldb::AsDouble(t[2]);
         })});
  });
}

TEST_F(VmInterpParity, SqlResidualWhereEveryComparison) {
  for (const char* cmp : {"=", "<", ">", "<=", ">=", "<>"}) {
    ExpectSqlParity(std::string("SELECT data_id, data_val FROM data "
                                "WHERE data_val * 2 ") +
                    cmp + " data_id + 20");
  }
}

TEST_F(VmInterpParity, SqlArithmeticProjection) {
  ExpectSqlParity(
      "SELECT data_val * 2 + 1 AS scaled, sqrt(data_val) AS root, "
      "log(data_val) AS lg, exp(data_val / 100) AS ex, abs(0 - data_val) "
      "AS mag FROM data WHERE dim_id = 1");
}

TEST_F(VmInterpParity, SqlAggregateWithGroupBy) {
  ExpectSqlParity(
      "SELECT dim_id, AVG(data_val) AS m, SUM(data_val * data_val) AS s, "
      "COUNT(*) AS n FROM data GROUP BY dim_id");
}

TEST_F(VmInterpParity, SqlJoinThenResidualFilter) {
  ExpectSqlParity(
      "SELECT d.data_id, d.data_val, m.clus_id "
      "FROM data d, membership[0] m "
      "WHERE d.data_id = m.data_id AND d.data_val > 25 AND m.clus_id <> 3");
}

// ---- Whole-driver parity at 1 and 4 threads -------------------------------
//
// Each reldb model driver runs once with the interpreter (the baseline,
// 1 thread) and then with the VM at 1 and 4 host threads; every
// observable — simulated init/iteration times, peak RAM, and the final
// model — must be bit-identical.

void ExpectSameRun(const RunResult& a, const RunResult& b) {
  ASSERT_TRUE(a.ok()) << a.status.ToString();
  ASSERT_TRUE(b.ok()) << b.status.ToString();
  EXPECT_EQ(a.init_seconds, b.init_seconds);
  ASSERT_EQ(a.iteration_seconds.size(), b.iteration_seconds.size());
  for (std::size_t i = 0; i < a.iteration_seconds.size(); ++i) {
    EXPECT_EQ(a.iteration_seconds[i], b.iteration_seconds[i]) << "iter " << i;
  }
  EXPECT_EQ(a.peak_machine_bytes, b.peak_machine_bytes);
}

class VmDriverParity : public ::testing::Test {
 protected:
  void SetUp() override { Database::SetDefaultColumnar(true); }

  void TearDown() override {
    exec::ThreadPool::SetGlobalThreads(1);
    Database::SetDefaultColumnar(saved_columnar_);
    Database::SetDefaultExprVm(saved_vm_);
  }

  /// Runs `runner` with the interpreter at 1 thread (the baseline), then
  /// with the VM at 1 and 4 threads, comparing each run to the baseline
  /// with `same_model`.
  template <typename Model, typename Runner>
  void ExpectVmParity(
      Runner runner,
      const std::function<void(const Model&, const Model&)>& same_model) {
    exec::ThreadPool::SetGlobalThreads(1);
    Database::SetDefaultExprVm(false);
    Model base_model;
    RunResult base = runner(&base_model);

    for (int threads : {1, 4}) {
      exec::ThreadPool::SetGlobalThreads(threads);
      Database::SetDefaultExprVm(true);
      Model model;
      RunResult run = runner(&model);
      ExpectSameRun(base, run);
      same_model(base_model, model);
    }
  }

 private:
  bool saved_columnar_ = Database::DefaultColumnar();
  bool saved_vm_ = Database::DefaultExprVm();
};

void ExpectSameGmm(const models::GmmParams& a, const models::GmmParams& b) {
  EXPECT_EQ(a.pi.raw(), b.pi.raw());
  ASSERT_EQ(a.mu.size(), b.mu.size());
  for (std::size_t k = 0; k < a.mu.size(); ++k) {
    EXPECT_EQ(a.mu[k].raw(), b.mu[k].raw()) << "mu " << k;
    for (std::size_t r = 0; r < a.sigma[k].rows(); ++r) {
      for (std::size_t c = 0; c < a.sigma[k].cols(); ++c) {
        EXPECT_EQ(a.sigma[k](r, c), b.sigma[k](r, c)) << "sigma " << k;
      }
    }
  }
}

core::GmmExperiment SmallGmm(bool imputation) {
  core::GmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 3;
  exp.dim = 3;
  exp.k = 2;
  exp.config.data.logical_per_machine = 1e6;
  exp.config.data.actual_per_machine = 200;
  exp.config.seed = 77;
  exp.imputation = imputation;
  return exp;
}

TEST_F(VmDriverParity, Gmm) {
  core::GmmExperiment exp = SmallGmm(false);
  ExpectVmParity<models::GmmParams>(
      [&](models::GmmParams* m) { return core::RunGmmRelDb(exp, m); },
      ExpectSameGmm);
}

TEST_F(VmDriverParity, GmmImputation) {
  core::GmmExperiment exp = SmallGmm(true);
  ExpectVmParity<models::GmmParams>(
      [&](models::GmmParams* m) { return core::RunGmmRelDb(exp, m); },
      ExpectSameGmm);
}

TEST_F(VmDriverParity, HmmWordBased) {
  core::HmmExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.states = 3;
  exp.vocab = 50;
  exp.mean_doc_len = 12;
  exp.granularity = core::TextGranularity::kWord;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 20;
  exp.config.seed = 19;
  ExpectVmParity<models::HmmParams>(
      [&](models::HmmParams* m) { return core::RunHmmRelDb(exp, m); },
      [](const models::HmmParams& a, const models::HmmParams& b) {
        EXPECT_EQ(a.delta0.raw(), b.delta0.raw());
        ASSERT_EQ(a.delta.size(), b.delta.size());
        for (std::size_t s = 0; s < a.delta.size(); ++s) {
          EXPECT_EQ(a.delta[s].raw(), b.delta[s].raw()) << "delta " << s;
          EXPECT_EQ(a.psi[s].raw(), b.psi[s].raw()) << "psi " << s;
        }
      });
}

TEST_F(VmDriverParity, LdaDocumentBased) {
  core::LdaExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 2;
  exp.topics = 4;
  exp.vocab = 60;
  exp.mean_doc_len = 15;
  exp.granularity = core::TextGranularity::kDocument;
  exp.config.data.logical_per_machine = 1e5;
  exp.config.data.actual_per_machine = 20;
  exp.config.seed = 31;
  ExpectVmParity<models::LdaParams>(
      [&](models::LdaParams* m) { return core::RunLdaRelDb(exp, m); },
      [](const models::LdaParams& a, const models::LdaParams& b) {
        ASSERT_EQ(a.phi.size(), b.phi.size());
        for (std::size_t t = 0; t < a.phi.size(); ++t) {
          EXPECT_EQ(a.phi[t].raw(), b.phi[t].raw()) << "topic " << t;
        }
      });
}

TEST_F(VmDriverParity, Lasso) {
  core::LassoExperiment exp;
  exp.config.machines = 3;
  exp.config.iterations = 3;
  exp.p = 8;
  exp.config.data.actual_per_machine = 100;
  exp.config.seed = 7;
  ExpectVmParity<models::LassoState>(
      [&](models::LassoState* m) { return core::RunLassoRelDb(exp, m); },
      [](const models::LassoState& a, const models::LassoState& b) {
        EXPECT_EQ(a.beta.raw(), b.beta.raw());
        EXPECT_EQ(a.inv_tau2.raw(), b.inv_tau2.raw());
        EXPECT_EQ(a.sigma2, b.sigma2);
      });
}

}  // namespace
}  // namespace mlbench
