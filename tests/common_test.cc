#include <gtest/gtest.h>

#include "common/status.h"
#include "common/str_format.h"

namespace mlbench {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::OutOfMemory("68 GB exceeded");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_EQ(st.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(st.ToString(), "OutOfMemory: 68 GB exceeded");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfMemory,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Doubled(Result<int> in) {
  MLBENCH_ASSIGN_OR_RETURN(int v, in);
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(Status::Internal("boom")).status().code(),
            StatusCode::kInternal);
}

TEST(FormatTest, DurationMatchesPaperTableFormat) {
  EXPECT_EQ(FormatDuration(0), "0:00");
  EXPECT_EQ(FormatDuration(75), "1:15");
  EXPECT_EQ(FormatDuration(27 * 60 + 55), "27:55");
  EXPECT_EQ(FormatDuration(1 * 3600 + 51 * 60 + 12), "1:51:12");
  EXPECT_EQ(FormatDuration(-1), "-");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(68.0 * 1024 * 1024 * 1024), "68.0 GiB");
}

TEST(FormatTest, CountSeparators) {
  EXPECT_EQ(FormatCount(7), "7");
  EXPECT_EQ(FormatCount(1234), "1,234");
  EXPECT_EQ(FormatCount(1000000000ULL), "1,000,000,000");
}

TEST(FormatTest, TableHasHeaderAndAlignedRows) {
  std::string t = RenderTable({"name", "time"}, {{"SimSQL", "27:55"},
                                                 {"GraphLab", "Fail"}});
  EXPECT_NE(t.find("name"), std::string::npos);
  EXPECT_NE(t.find("-----"), std::string::npos);
  EXPECT_NE(t.find("GraphLab"), std::string::npos);
}

}  // namespace
}  // namespace mlbench
