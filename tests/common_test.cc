#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/flat_index.h"
#include "common/status.h"
#include "common/str_format.h"

namespace mlbench {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::OutOfMemory("68 GB exceeded");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_EQ(st.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(st.ToString(), "OutOfMemory: 68 GB exceeded");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfMemory,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Doubled(Result<int> in) {
  MLBENCH_ASSIGN_OR_RETURN(int v, in);
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(Status::Internal("boom")).status().code(),
            StatusCode::kInternal);
}

TEST(FormatTest, DurationMatchesPaperTableFormat) {
  EXPECT_EQ(FormatDuration(0), "0:00");
  EXPECT_EQ(FormatDuration(75), "1:15");
  EXPECT_EQ(FormatDuration(27 * 60 + 55), "27:55");
  EXPECT_EQ(FormatDuration(1 * 3600 + 51 * 60 + 12), "1:51:12");
  EXPECT_EQ(FormatDuration(-1), "-");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(68.0 * 1024 * 1024 * 1024), "68.0 GiB");
}

TEST(FormatTest, CountSeparators) {
  EXPECT_EQ(FormatCount(7), "7");
  EXPECT_EQ(FormatCount(1234), "1,234");
  EXPECT_EQ(FormatCount(1000000000ULL), "1,000,000,000");
}

TEST(FormatTest, TableHasHeaderAndAlignedRows) {
  std::string t = RenderTable({"name", "time"}, {{"SimSQL", "27:55"},
                                                 {"GraphLab", "Fail"}});
  EXPECT_NE(t.find("name"), std::string::npos);
  EXPECT_NE(t.find("-----"), std::string::npos);
  EXPECT_NE(t.find("GraphLab"), std::string::npos);
}

TEST(FlatIndexTest, InsertFindAndUpdate) {
  common::FlatIndex idx;
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.Find(42), nullptr);
  bool inserted = false;
  std::size_t* slot = idx.FindOrInsert(42, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*slot, 0u);  // value-initialized
  *slot = 7;
  slot = idx.FindOrInsert(42, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*slot, 7u);
  ASSERT_NE(idx.Find(42), nullptr);
  EXPECT_EQ(*idx.Find(42), 7u);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(FlatIndexTest, GenerationClearDropsEverything) {
  common::FlatIndex idx;
  bool inserted = false;
  for (std::uint64_t k = 0; k < 100; ++k) {
    *idx.FindOrInsert(k, &inserted) = k + 1;
  }
  EXPECT_EQ(idx.size(), 100u);
  idx.Clear();
  EXPECT_EQ(idx.size(), 0u);
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(idx.Find(k), nullptr) << "stale key " << k;
  }
  // Reinsert after clear: fresh value slots, no leftovers from the
  // previous generation.
  *idx.FindOrInsert(5, &inserted) = 99;
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*idx.Find(5), 99u);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(FlatIndexTest, GrowthPreservesEntries) {
  common::FlatIndex idx;
  bool inserted = false;
  constexpr std::uint64_t kKeys = 10000;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    // Structured keys like the BSP combiner's (machine << 48 | slot).
    *idx.FindOrInsert((k % 16) << 48 | (k / 16), &inserted) = k;
  }
  EXPECT_EQ(idx.size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::size_t* found = idx.Find((k % 16) << 48 | (k / 16));
    ASSERT_NE(found, nullptr) << "key " << k;
    EXPECT_EQ(*found, k);
  }
}

TEST(FlatIndexTest, ReserveAvoidsRehashAndKeepsSemantics) {
  common::FlatIndex idx;
  idx.Reserve(1000);
  bool inserted = false;
  std::size_t* slot = idx.FindOrInsert(1, &inserted);
  *slot = 11;
  for (std::uint64_t k = 2; k < 500; ++k) idx.FindOrInsert(k, &inserted);
  // Under the reserved capacity no rehash happens, so the first slot
  // pointer stays valid across the later inserts.
  EXPECT_EQ(*slot, 11u);
  EXPECT_EQ(*idx.Find(1), 11u);
}

TEST(FlatIndexTest, ClearIsReusableManyTimes) {
  common::FlatIndex idx;
  bool inserted = false;
  for (int round = 0; round < 1000; ++round) {
    idx.Clear();
    for (std::uint64_t k = 0; k < 8; ++k) {
      std::size_t* slot =
          idx.FindOrInsert(k * 1315423911u, &inserted);
      EXPECT_TRUE(inserted);
      *slot = static_cast<std::size_t>(round);
    }
    EXPECT_EQ(idx.size(), 8u);
    EXPECT_EQ(*idx.Find(0), static_cast<std::size_t>(round));
  }
}

}  // namespace
}  // namespace mlbench
