file(REMOVE_RECURSE
  "CMakeFiles/platform_shootout.dir/platform_shootout.cpp.o"
  "CMakeFiles/platform_shootout.dir/platform_shootout.cpp.o.d"
  "platform_shootout"
  "platform_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
