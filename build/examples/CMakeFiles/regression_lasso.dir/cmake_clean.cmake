file(REMOVE_RECURSE
  "CMakeFiles/regression_lasso.dir/regression_lasso.cpp.o"
  "CMakeFiles/regression_lasso.dir/regression_lasso.cpp.o.d"
  "regression_lasso"
  "regression_lasso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_lasso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
