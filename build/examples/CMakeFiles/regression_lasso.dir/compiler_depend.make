# Empty compiler generated dependencies file for regression_lasso.
# This may be replaced when dependencies are built.
