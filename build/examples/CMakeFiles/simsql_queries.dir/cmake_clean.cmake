file(REMOVE_RECURSE
  "CMakeFiles/simsql_queries.dir/simsql_queries.cpp.o"
  "CMakeFiles/simsql_queries.dir/simsql_queries.cpp.o.d"
  "simsql_queries"
  "simsql_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsql_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
