# Empty compiler generated dependencies file for simsql_queries.
# This may be replaced when dependencies are built.
