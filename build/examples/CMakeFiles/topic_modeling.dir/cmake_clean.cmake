file(REMOVE_RECURSE
  "CMakeFiles/topic_modeling.dir/topic_modeling.cpp.o"
  "CMakeFiles/topic_modeling.dir/topic_modeling.cpp.o.d"
  "topic_modeling"
  "topic_modeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topic_modeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
