# Empty dependencies file for topic_modeling.
# This may be replaced when dependencies are built.
