file(REMOVE_RECURSE
  "CMakeFiles/collapsed_lda_test.dir/collapsed_lda_test.cc.o"
  "CMakeFiles/collapsed_lda_test.dir/collapsed_lda_test.cc.o.d"
  "collapsed_lda_test"
  "collapsed_lda_test.pdb"
  "collapsed_lda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapsed_lda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
