file(REMOVE_RECURSE
  "CMakeFiles/reldb_test.dir/reldb_test.cc.o"
  "CMakeFiles/reldb_test.dir/reldb_test.cc.o.d"
  "reldb_test"
  "reldb_test.pdb"
  "reldb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reldb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
