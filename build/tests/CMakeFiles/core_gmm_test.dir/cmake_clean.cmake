file(REMOVE_RECURSE
  "CMakeFiles/core_gmm_test.dir/core_gmm_test.cc.o"
  "CMakeFiles/core_gmm_test.dir/core_gmm_test.cc.o.d"
  "core_gmm_test"
  "core_gmm_test.pdb"
  "core_gmm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
