# Empty dependencies file for core_gmm_test.
# This may be replaced when dependencies are built.
