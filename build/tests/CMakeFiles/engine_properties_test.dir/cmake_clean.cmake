file(REMOVE_RECURSE
  "CMakeFiles/engine_properties_test.dir/engine_properties_test.cc.o"
  "CMakeFiles/engine_properties_test.dir/engine_properties_test.cc.o.d"
  "engine_properties_test"
  "engine_properties_test.pdb"
  "engine_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
