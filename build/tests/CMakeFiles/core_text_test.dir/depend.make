# Empty dependencies file for core_text_test.
# This may be replaced when dependencies are built.
