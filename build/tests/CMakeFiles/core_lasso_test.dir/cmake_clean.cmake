file(REMOVE_RECURSE
  "CMakeFiles/core_lasso_test.dir/core_lasso_test.cc.o"
  "CMakeFiles/core_lasso_test.dir/core_lasso_test.cc.o.d"
  "core_lasso_test"
  "core_lasso_test.pdb"
  "core_lasso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lasso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
