# Empty compiler generated dependencies file for core_lasso_test.
# This may be replaced when dependencies are built.
