# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/reldb_test[1]_include.cmake")
include("/root/repo/build/tests/gas_test[1]_include.cmake")
include("/root/repo/build/tests/bsp_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/core_gmm_test[1]_include.cmake")
include("/root/repo/build/tests/core_lasso_test[1]_include.cmake")
include("/root/repo/build/tests/core_text_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/collapsed_lda_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/engine_properties_test[1]_include.cmake")
