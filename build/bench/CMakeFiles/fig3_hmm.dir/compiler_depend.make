# Empty compiler generated dependencies file for fig3_hmm.
# This may be replaced when dependencies are built.
