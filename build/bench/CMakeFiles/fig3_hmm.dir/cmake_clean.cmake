file(REMOVE_RECURSE
  "CMakeFiles/fig3_hmm.dir/fig3_hmm.cc.o"
  "CMakeFiles/fig3_hmm.dir/fig3_hmm.cc.o.d"
  "fig3_hmm"
  "fig3_hmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
