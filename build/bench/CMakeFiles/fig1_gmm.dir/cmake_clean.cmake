file(REMOVE_RECURSE
  "CMakeFiles/fig1_gmm.dir/fig1_gmm.cc.o"
  "CMakeFiles/fig1_gmm.dir/fig1_gmm.cc.o.d"
  "fig1_gmm"
  "fig1_gmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_gmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
