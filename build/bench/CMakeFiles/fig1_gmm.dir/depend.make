# Empty dependencies file for fig1_gmm.
# This may be replaced when dependencies are built.
