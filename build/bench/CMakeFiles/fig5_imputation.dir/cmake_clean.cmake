file(REMOVE_RECURSE
  "CMakeFiles/fig5_imputation.dir/fig5_imputation.cc.o"
  "CMakeFiles/fig5_imputation.dir/fig5_imputation.cc.o.d"
  "fig5_imputation"
  "fig5_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
