# Empty compiler generated dependencies file for fig5_imputation.
# This may be replaced when dependencies are built.
