file(REMOVE_RECURSE
  "CMakeFiles/fig2_lasso.dir/fig2_lasso.cc.o"
  "CMakeFiles/fig2_lasso.dir/fig2_lasso.cc.o.d"
  "fig2_lasso"
  "fig2_lasso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_lasso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
