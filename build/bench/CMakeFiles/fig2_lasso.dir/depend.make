# Empty dependencies file for fig2_lasso.
# This may be replaced when dependencies are built.
