# Empty compiler generated dependencies file for ablation_super_vertex.
# This may be replaced when dependencies are built.
