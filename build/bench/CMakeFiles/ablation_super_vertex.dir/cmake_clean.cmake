file(REMOVE_RECURSE
  "CMakeFiles/ablation_super_vertex.dir/ablation_super_vertex.cc.o"
  "CMakeFiles/ablation_super_vertex.dir/ablation_super_vertex.cc.o.d"
  "ablation_super_vertex"
  "ablation_super_vertex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_super_vertex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
