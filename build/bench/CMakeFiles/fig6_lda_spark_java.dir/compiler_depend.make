# Empty compiler generated dependencies file for fig6_lda_spark_java.
# This may be replaced when dependencies are built.
