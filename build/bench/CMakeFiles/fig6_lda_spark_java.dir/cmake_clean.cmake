file(REMOVE_RECURSE
  "CMakeFiles/fig6_lda_spark_java.dir/fig6_lda_spark_java.cc.o"
  "CMakeFiles/fig6_lda_spark_java.dir/fig6_lda_spark_java.cc.o.d"
  "fig6_lda_spark_java"
  "fig6_lda_spark_java.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lda_spark_java.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
