
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_lda.cc" "bench/CMakeFiles/fig4_lda.dir/fig4_lda.cc.o" "gcc" "bench/CMakeFiles/fig4_lda.dir/fig4_lda.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mlbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mlbench_models.dir/DependInfo.cmake"
  "/root/repo/build/src/reldb/CMakeFiles/mlbench_reldb.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlbench_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mlbench_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mlbench_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlbench_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
