# Empty dependencies file for fig4_lda.
# This may be replaced when dependencies are built.
