file(REMOVE_RECURSE
  "CMakeFiles/fig4_lda.dir/fig4_lda.cc.o"
  "CMakeFiles/fig4_lda.dir/fig4_lda.cc.o.d"
  "fig4_lda"
  "fig4_lda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_lda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
