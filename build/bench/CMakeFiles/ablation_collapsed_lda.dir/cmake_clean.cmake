file(REMOVE_RECURSE
  "CMakeFiles/ablation_collapsed_lda.dir/ablation_collapsed_lda.cc.o"
  "CMakeFiles/ablation_collapsed_lda.dir/ablation_collapsed_lda.cc.o.d"
  "ablation_collapsed_lda"
  "ablation_collapsed_lda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collapsed_lda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
