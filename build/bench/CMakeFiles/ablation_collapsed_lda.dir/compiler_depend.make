# Empty compiler generated dependencies file for ablation_collapsed_lda.
# This may be replaced when dependencies are built.
