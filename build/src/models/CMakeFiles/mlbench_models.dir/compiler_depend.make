# Empty compiler generated dependencies file for mlbench_models.
# This may be replaced when dependencies are built.
