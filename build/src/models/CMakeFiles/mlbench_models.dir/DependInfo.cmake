
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/collapsed_lda.cc" "src/models/CMakeFiles/mlbench_models.dir/collapsed_lda.cc.o" "gcc" "src/models/CMakeFiles/mlbench_models.dir/collapsed_lda.cc.o.d"
  "/root/repo/src/models/gmm.cc" "src/models/CMakeFiles/mlbench_models.dir/gmm.cc.o" "gcc" "src/models/CMakeFiles/mlbench_models.dir/gmm.cc.o.d"
  "/root/repo/src/models/hmm.cc" "src/models/CMakeFiles/mlbench_models.dir/hmm.cc.o" "gcc" "src/models/CMakeFiles/mlbench_models.dir/hmm.cc.o.d"
  "/root/repo/src/models/imputation.cc" "src/models/CMakeFiles/mlbench_models.dir/imputation.cc.o" "gcc" "src/models/CMakeFiles/mlbench_models.dir/imputation.cc.o.d"
  "/root/repo/src/models/lasso.cc" "src/models/CMakeFiles/mlbench_models.dir/lasso.cc.o" "gcc" "src/models/CMakeFiles/mlbench_models.dir/lasso.cc.o.d"
  "/root/repo/src/models/lda.cc" "src/models/CMakeFiles/mlbench_models.dir/lda.cc.o" "gcc" "src/models/CMakeFiles/mlbench_models.dir/lda.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/mlbench_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mlbench_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlbench_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
