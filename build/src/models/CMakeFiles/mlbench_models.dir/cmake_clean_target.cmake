file(REMOVE_RECURSE
  "libmlbench_models.a"
)
