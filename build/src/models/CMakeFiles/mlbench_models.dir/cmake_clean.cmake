file(REMOVE_RECURSE
  "CMakeFiles/mlbench_models.dir/collapsed_lda.cc.o"
  "CMakeFiles/mlbench_models.dir/collapsed_lda.cc.o.d"
  "CMakeFiles/mlbench_models.dir/gmm.cc.o"
  "CMakeFiles/mlbench_models.dir/gmm.cc.o.d"
  "CMakeFiles/mlbench_models.dir/hmm.cc.o"
  "CMakeFiles/mlbench_models.dir/hmm.cc.o.d"
  "CMakeFiles/mlbench_models.dir/imputation.cc.o"
  "CMakeFiles/mlbench_models.dir/imputation.cc.o.d"
  "CMakeFiles/mlbench_models.dir/lasso.cc.o"
  "CMakeFiles/mlbench_models.dir/lasso.cc.o.d"
  "CMakeFiles/mlbench_models.dir/lda.cc.o"
  "CMakeFiles/mlbench_models.dir/lda.cc.o.d"
  "libmlbench_models.a"
  "libmlbench_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlbench_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
