# Empty compiler generated dependencies file for mlbench_stats.
# This may be replaced when dependencies are built.
