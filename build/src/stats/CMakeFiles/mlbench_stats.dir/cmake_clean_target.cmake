file(REMOVE_RECURSE
  "libmlbench_stats.a"
)
