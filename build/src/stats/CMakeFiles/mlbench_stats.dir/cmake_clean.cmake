file(REMOVE_RECURSE
  "CMakeFiles/mlbench_stats.dir/distributions.cc.o"
  "CMakeFiles/mlbench_stats.dir/distributions.cc.o.d"
  "CMakeFiles/mlbench_stats.dir/rng.cc.o"
  "CMakeFiles/mlbench_stats.dir/rng.cc.o.d"
  "libmlbench_stats.a"
  "libmlbench_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlbench_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
