file(REMOVE_RECURSE
  "libmlbench_common.a"
)
