file(REMOVE_RECURSE
  "CMakeFiles/mlbench_common.dir/loc_counter.cc.o"
  "CMakeFiles/mlbench_common.dir/loc_counter.cc.o.d"
  "CMakeFiles/mlbench_common.dir/status.cc.o"
  "CMakeFiles/mlbench_common.dir/status.cc.o.d"
  "CMakeFiles/mlbench_common.dir/str_format.cc.o"
  "CMakeFiles/mlbench_common.dir/str_format.cc.o.d"
  "libmlbench_common.a"
  "libmlbench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlbench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
