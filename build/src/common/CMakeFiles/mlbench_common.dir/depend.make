# Empty dependencies file for mlbench_common.
# This may be replaced when dependencies are built.
