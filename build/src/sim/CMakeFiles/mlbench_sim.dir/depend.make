# Empty dependencies file for mlbench_sim.
# This may be replaced when dependencies are built.
