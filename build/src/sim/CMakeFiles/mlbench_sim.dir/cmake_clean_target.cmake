file(REMOVE_RECURSE
  "libmlbench_sim.a"
)
