file(REMOVE_RECURSE
  "CMakeFiles/mlbench_sim.dir/cluster_sim.cc.o"
  "CMakeFiles/mlbench_sim.dir/cluster_sim.cc.o.d"
  "CMakeFiles/mlbench_sim.dir/cost_profile.cc.o"
  "CMakeFiles/mlbench_sim.dir/cost_profile.cc.o.d"
  "libmlbench_sim.a"
  "libmlbench_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlbench_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
