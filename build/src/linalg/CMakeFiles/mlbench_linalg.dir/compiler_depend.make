# Empty compiler generated dependencies file for mlbench_linalg.
# This may be replaced when dependencies are built.
