file(REMOVE_RECURSE
  "CMakeFiles/mlbench_linalg.dir/matrix.cc.o"
  "CMakeFiles/mlbench_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/mlbench_linalg.dir/vector.cc.o"
  "CMakeFiles/mlbench_linalg.dir/vector.cc.o.d"
  "libmlbench_linalg.a"
  "libmlbench_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlbench_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
