file(REMOVE_RECURSE
  "libmlbench_linalg.a"
)
