# Empty compiler generated dependencies file for mlbench_reldb.
# This may be replaced when dependencies are built.
