file(REMOVE_RECURSE
  "libmlbench_reldb.a"
)
