file(REMOVE_RECURSE
  "CMakeFiles/mlbench_reldb.dir/rel.cc.o"
  "CMakeFiles/mlbench_reldb.dir/rel.cc.o.d"
  "CMakeFiles/mlbench_reldb.dir/sql.cc.o"
  "CMakeFiles/mlbench_reldb.dir/sql.cc.o.d"
  "libmlbench_reldb.a"
  "libmlbench_reldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlbench_reldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
