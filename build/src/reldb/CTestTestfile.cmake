# CMake generated Testfile for 
# Source directory: /root/repo/src/reldb
# Build directory: /root/repo/build/src/reldb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
