
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/gmm_bsp.cc" "src/core/CMakeFiles/mlbench_core.dir/gmm_bsp.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/gmm_bsp.cc.o.d"
  "/root/repo/src/core/gmm_dataflow.cc" "src/core/CMakeFiles/mlbench_core.dir/gmm_dataflow.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/gmm_dataflow.cc.o.d"
  "/root/repo/src/core/gmm_gas.cc" "src/core/CMakeFiles/mlbench_core.dir/gmm_gas.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/gmm_gas.cc.o.d"
  "/root/repo/src/core/gmm_reldb.cc" "src/core/CMakeFiles/mlbench_core.dir/gmm_reldb.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/gmm_reldb.cc.o.d"
  "/root/repo/src/core/hmm_bsp.cc" "src/core/CMakeFiles/mlbench_core.dir/hmm_bsp.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/hmm_bsp.cc.o.d"
  "/root/repo/src/core/hmm_dataflow.cc" "src/core/CMakeFiles/mlbench_core.dir/hmm_dataflow.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/hmm_dataflow.cc.o.d"
  "/root/repo/src/core/hmm_gas.cc" "src/core/CMakeFiles/mlbench_core.dir/hmm_gas.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/hmm_gas.cc.o.d"
  "/root/repo/src/core/hmm_reldb.cc" "src/core/CMakeFiles/mlbench_core.dir/hmm_reldb.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/hmm_reldb.cc.o.d"
  "/root/repo/src/core/lasso_bsp.cc" "src/core/CMakeFiles/mlbench_core.dir/lasso_bsp.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/lasso_bsp.cc.o.d"
  "/root/repo/src/core/lasso_dataflow.cc" "src/core/CMakeFiles/mlbench_core.dir/lasso_dataflow.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/lasso_dataflow.cc.o.d"
  "/root/repo/src/core/lasso_gas.cc" "src/core/CMakeFiles/mlbench_core.dir/lasso_gas.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/lasso_gas.cc.o.d"
  "/root/repo/src/core/lasso_reldb.cc" "src/core/CMakeFiles/mlbench_core.dir/lasso_reldb.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/lasso_reldb.cc.o.d"
  "/root/repo/src/core/lda_bsp.cc" "src/core/CMakeFiles/mlbench_core.dir/lda_bsp.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/lda_bsp.cc.o.d"
  "/root/repo/src/core/lda_dataflow.cc" "src/core/CMakeFiles/mlbench_core.dir/lda_dataflow.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/lda_dataflow.cc.o.d"
  "/root/repo/src/core/lda_gas.cc" "src/core/CMakeFiles/mlbench_core.dir/lda_gas.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/lda_gas.cc.o.d"
  "/root/repo/src/core/lda_reldb.cc" "src/core/CMakeFiles/mlbench_core.dir/lda_reldb.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/lda_reldb.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/mlbench_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/report.cc.o.d"
  "/root/repo/src/core/workloads.cc" "src/core/CMakeFiles/mlbench_core.dir/workloads.cc.o" "gcc" "src/core/CMakeFiles/mlbench_core.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/mlbench_models.dir/DependInfo.cmake"
  "/root/repo/build/src/reldb/CMakeFiles/mlbench_reldb.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlbench_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mlbench_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mlbench_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlbench_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
