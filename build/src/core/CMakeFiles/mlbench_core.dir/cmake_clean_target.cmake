file(REMOVE_RECURSE
  "libmlbench_core.a"
)
