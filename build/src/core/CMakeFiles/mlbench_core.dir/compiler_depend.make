# Empty compiler generated dependencies file for mlbench_core.
# This may be replaced when dependencies are built.
